package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Multinomial draws counts ~ Mult(n; probs) by the conditional-binomial
// decomposition: each bucket j takes Bin(remaining, p_j / p_{≥j}).
// probs must be non-negative and finite with a positive sum (they are
// normalized internally, so slightly-off-by-rounding vectors are fine).
func Multinomial(r *rng.RNG, n int, probs []float64) ([]int, error) {
	if r == nil || n < 0 || len(probs) == 0 {
		return nil, fmt.Errorf("%w: multinomial(n=%d, m=%d)", ErrBadParam, n, len(probs))
	}
	total, lastPos, err := validateProbs(probs)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	multinomialInto(r, n, probs, total, lastPos, out)
	return out, nil
}

// validateProbs checks probs is non-negative, finite, and has a
// positive sum; it returns the sum and the index of the last positive
// entry (the bucket that absorbs conditional-decomposition leftovers).
func validateProbs(probs []float64) (total float64, lastPos int, err error) {
	for j, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return 0, 0, fmt.Errorf("%w: multinomial prob[%d]=%v", ErrBadParam, j, p)
		}
		total += p
		if p > 0 {
			lastPos = j
		}
	}
	if total <= 0 {
		return 0, 0, fmt.Errorf("%w: multinomial probs sum to %v", ErrBadParam, total)
	}
	return total, lastPos, nil
}

// multinomialInto is the sampling core: conditional-binomial
// decomposition of n draws over probs (summing to total, last positive
// entry at lastPos) written into out, which it zeroes first. Leftover
// draws — the loop ends with remaining > 0 when floating-point dust in
// the running suffix sum shaves a bucket's conditional probability
// below 1 — are credited to the last *positive-weight* bucket, never to
// a trailing zero-probability bucket (which the pre-sampler code could
// resurrect at a ~n·2⁻⁵² rate: invisible in a single run, but a
// real event across a fleet of million-step jobs).
func multinomialInto(r *rng.RNG, n int, probs []float64, total float64, lastPos int, out []int) {
	for j := range out {
		out[j] = 0
	}
	remaining := n
	remainingP := total
	for j := 0; j < len(probs)-1 && remaining > 0; j++ {
		if remainingP <= 0 {
			break
		}
		pj := probs[j] / remainingP
		if pj > 1 {
			pj = 1
		}
		k := binomial(r, remaining, pj)
		out[j] = k
		remaining -= k
		remainingP -= probs[j]
	}
	out[lastPos] += remaining
}

// MultinomialSampler draws multinomial counts into a caller-provided
// buffer with no per-call allocation or re-validation — the sampler
// object form of Multinomial for hot loops that draw every step from
// the same distribution family.
//
// NewMultinomialSampler validates a prototype probability vector once;
// SampleInto then trusts its input, so the caller must guarantee every
// probs it passes stays in the validated family: the same length, all
// entries non-negative and finite, positive sum. The simulation engines
// satisfy this structurally — their stage-one vector (1−µ)·Q_j + µ/m is
// a rescaled probability vector by construction.
//
// SampleInto consumes exactly the same RNG draw sequence as Multinomial
// on the same inputs, so the two are interchangeable bit for bit.
type MultinomialSampler struct {
	m int
}

// NewMultinomialSampler validates the prototype vector (non-negative,
// finite, positive sum) and pins the category count.
func NewMultinomialSampler(prototype []float64) (*MultinomialSampler, error) {
	if len(prototype) == 0 {
		return nil, fmt.Errorf("%w: multinomial sampler with no categories", ErrBadParam)
	}
	if _, _, err := validateProbs(prototype); err != nil {
		return nil, err
	}
	return &MultinomialSampler{m: len(prototype)}, nil
}

// Len returns the number of categories.
func (s *MultinomialSampler) Len() int { return s.m }

// SampleInto draws counts ~ Mult(n; probs) into out (zeroing it first).
// probs and out must have the sampler's length and n must be ≥ 0; probs
// must be in the family validated at construction (see type docs). It
// never allocates.
func (s *MultinomialSampler) SampleInto(r *rng.RNG, n int, probs []float64, out []int) {
	if len(probs) != s.m || len(out) != s.m {
		panic(fmt.Sprintf("dist: MultinomialSampler(m=%d) with len(probs)=%d len(out)=%d",
			s.m, len(probs), len(out)))
	}
	total := 0.0
	lastPos := 0
	for j, p := range probs {
		total += p
		if p > 0 {
			lastPos = j
		}
	}
	multinomialInto(r, n, probs, total, lastPos, out)
}
