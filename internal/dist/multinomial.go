package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Multinomial draws counts ~ Mult(n; probs) by the conditional-binomial
// decomposition: each bucket j takes Bin(remaining, p_j / p_{≥j}).
// probs must be non-negative and finite with a positive sum (they are
// normalized internally, so slightly-off-by-rounding vectors are fine).
func Multinomial(r *rng.RNG, n int, probs []float64) ([]int, error) {
	if r == nil || n < 0 || len(probs) == 0 {
		return nil, fmt.Errorf("%w: multinomial(n=%d, m=%d)", ErrBadParam, n, len(probs))
	}
	total := 0.0
	for j, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("%w: multinomial prob[%d]=%v", ErrBadParam, j, p)
		}
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: multinomial probs sum to %v", ErrBadParam, total)
	}
	out := make([]int, len(probs))
	remaining := n
	remainingP := total
	for j := 0; j < len(probs)-1 && remaining > 0; j++ {
		if remainingP <= 0 {
			break
		}
		pj := probs[j] / remainingP
		if pj > 1 {
			pj = 1
		}
		k, err := Binomial(r, remaining, pj)
		if err != nil {
			return nil, err
		}
		out[j] = k
		remaining -= k
		remainingP -= probs[j]
	}
	out[len(probs)-1] += remaining
	return out, nil
}
