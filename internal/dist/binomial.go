package dist

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/rng"
)

// Regime thresholds for Binomial. Exported only through behavior; the
// A02 ablation exercises one case per regime.
const (
	directMaxN  = 30 // n ≤ 30 with small n·p: plain Bernoulli loop
	btrsMinMean = 10 // n·p ≥ 10 (after symmetry): transformed rejection
)

// Binomial draws k ~ Bin(n, p) exactly. It dispatches by regime:
// symmetry reduction for p > 1/2, BTRS (Hörmann's transformed
// rejection) when n·p ≥ 10, a direct Bernoulli loop for small n, and
// geometric failure-skipping otherwise (large n, tiny p).
func Binomial(r *rng.RNG, n int, p float64) (int, error) {
	if r == nil || n < 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("%w: binomial(n=%d, p=%v)", ErrBadParam, n, p)
	}
	return binomial(r, n, p), nil
}

// BinomialUnchecked draws k ~ Bin(n, p) without parameter validation:
// the caller guarantees r non-nil, n ≥ 0, and p ∈ [0, 1] (typically
// validated once at engine construction). It consumes exactly the same
// RNG draw sequence as Binomial, so swapping the two never changes a
// simulation's emitted bits — it only removes the per-draw validation
// from hot loops that issue millions of draws per job.
func BinomialUnchecked(r *rng.RNG, n int, p float64) int {
	return binomial(r, n, p)
}

// binomial is the unchecked sampling core shared by Binomial,
// BinomialUnchecked, and the multinomial decomposition.
func binomial(r *rng.RNG, n int, p float64) int {
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	if p > 0.5 {
		// Symmetry reduction, flattened (the checked entry point used
		// to recurse through the validation prologue).
		return n - binomialSmallP(r, n, 1-p)
	}
	return binomialSmallP(r, n, p)
}

// binomialSmallP dispatches by regime for 0 < p ≤ 1/2, n ≥ 1. Every
// regime hoists the generator state into registers (rng.Local) for its
// draw loop; the stream is unchanged.
func binomialSmallP(r *rng.RNG, n int, p float64) int {
	if float64(n)*p >= btrsMinMean {
		return btrs(r, n, p)
	}
	if n <= directMaxN {
		x := r.Hoist()
		k := 0
		for i := 0; i < n; i++ {
			// Bernoulli(p) with p interior: one uniform per trial,
			// accumulated branchlessly.
			hit := 0
			if x.Float64() < p {
				hit = 1
			}
			k += hit
		}
		x.StoreTo(r)
		return k
	}
	return geometricBinomial(r, n, p)
}

// BinomialMean returns n·p.
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// BinomialVariance returns n·p·(1−p).
func BinomialVariance(n int, p float64) float64 { return float64(n) * p * (1 - p) }

// geometricBinomial counts successes by skipping failure runs with
// geometric jumps — O(n·p) expected work, exact for 0 < p ≤ 1/2.
func geometricBinomial(r *rng.RNG, n int, p float64) int {
	lq := math.Log1p(-p)
	x := r.Hoist()
	k := 0
	i := 0
	for {
		u := x.Float64()
		for u == 0 {
			u = x.Float64()
		}
		jump := math.Floor(math.Log(u) / lq)
		if jump >= float64(n-i) { // next success falls past the end
			break
		}
		i += int(jump) + 1
		k++
		if i >= n {
			break
		}
	}
	x.StoreTo(r)
	return k
}

// btrs draws Bin(n, p) by Hörmann's BTRS transformed-rejection
// algorithm (1993); requires 0 < p ≤ 1/2 and n·p ≥ 10.
//
// The exact-acceptance constants (α, ln(p/q), the mode, and its
// log-gamma term h — two math.Lgamma calls) are only needed when the
// cheap squeeze fails, which the algorithm is tuned to make rare; they
// are computed lazily on the first squeeze failure so the common
// all-squeeze-accept call pays one sqrt and a handful of multiplies.
// Laziness never changes the draw sequence or the accepted value: the
// same uniforms feed the same tests with the same constants.
func btrs(r *rng.RNG, n int, p float64) int {
	q := 1 - p
	nf := float64(n)
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	var alpha, lpq, m, h float64
	exactReady := false
	// Generator state in plain scalar locals with the frozen Uint64
	// and Float64 kernels expanded in place (struct-based hoisting
	// spills to the stack): this loop draws two uniforms per rejection
	// round on the hottest aggregate-engine path.
	s0, s1, s2, s3 := r.HoistScalars()
	var k int
	for {
		uu := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		vv := bits.RotateLeft64(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		u := float64(uu>>11)*(1.0/(1<<53)) - 0.5
		v := float64(vv>>11) * (1.0 / (1 << 53))
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			k = int(kf)
			break
		}
		// Squeeze failed: exact log-acceptance test.
		if !exactReady {
			alpha = (2.83 + 5.1/b) * spq
			lpq = math.Log(p / q)
			m = math.Floor(float64(n+1) * p)
			h = lgammaInt(m+1) + lgammaInt(nf-m+1)
			exactReady = true
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgammaInt(kf+1)-lgammaInt(nf-kf+1)+(kf-m)*lpq {
			k = int(kf)
			break
		}
	}
	r.StoreScalars(s0, s1, s2, s3)
	return k
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// BTRS's exact test only ever evaluates lgamma at integer-valued
// arguments (kf, m, and n are integer-valued floats): these are
// log-factorials, the textbook candidate for caching in a binomial
// sampler. The cache stores math.Lgamma's own outputs, so a hit is
// bit-identical to the direct call; misses (arguments ≥ 2¹⁶) fall
// through. Built lazily on the first exact test, read-only after.
const lgammaIntCacheSize = 1 << 17 // 1 MiB, covers the common n·p range

var (
	lgammaIntOnce  sync.Once
	lgammaIntCache []float64
)

func initLgammaIntCache() {
	c := make([]float64, lgammaIntCacheSize)
	for i := 1; i < lgammaIntCacheSize; i++ {
		c[i], _ = math.Lgamma(float64(i))
	}
	lgammaIntCache = c
}

// lgammaInt is lgamma restricted to integer-valued x ≥ 1.
func lgammaInt(x float64) float64 {
	if x < lgammaIntCacheSize {
		lgammaIntOnce.Do(initLgammaIntCache)
		return lgammaIntCache[int(x)]
	}
	return lgamma(x)
}
