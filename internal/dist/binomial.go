package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Regime thresholds for Binomial. Exported only through behavior; the
// A02 ablation exercises one case per regime.
const (
	directMaxN  = 30 // n ≤ 30 with small n·p: plain Bernoulli loop
	btrsMinMean = 10 // n·p ≥ 10 (after symmetry): transformed rejection
)

// Binomial draws k ~ Bin(n, p) exactly. It dispatches by regime:
// symmetry reduction for p > 1/2, BTRS (Hörmann's transformed
// rejection) when n·p ≥ 10, a direct Bernoulli loop for small n, and
// geometric failure-skipping otherwise (large n, tiny p).
func Binomial(r *rng.RNG, n int, p float64) (int, error) {
	if r == nil || n < 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("%w: binomial(n=%d, p=%v)", ErrBadParam, n, p)
	}
	if n == 0 || p == 0 {
		return 0, nil
	}
	if p == 1 {
		return n, nil
	}
	if p > 0.5 {
		k, err := Binomial(r, n, 1-p)
		return n - k, err
	}
	if float64(n)*p >= btrsMinMean {
		return btrs(r, n, p), nil
	}
	if n <= directMaxN {
		k := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				k++
			}
		}
		return k, nil
	}
	return geometricBinomial(r, n, p), nil
}

// BinomialMean returns n·p.
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// BinomialVariance returns n·p·(1−p).
func BinomialVariance(n int, p float64) float64 { return float64(n) * p * (1 - p) }

// geometricBinomial counts successes by skipping failure runs with
// geometric jumps — O(n·p) expected work, exact for 0 < p ≤ 1/2.
func geometricBinomial(r *rng.RNG, n int, p float64) int {
	lq := math.Log1p(-p)
	k := 0
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		jump := math.Floor(math.Log(u) / lq)
		if jump >= float64(n-i) { // next success falls past the end
			return k
		}
		i += int(jump) + 1
		k++
		if i >= n {
			return k
		}
	}
}

// btrs draws Bin(n, p) by Hörmann's BTRS transformed-rejection
// algorithm (1993); requires 0 < p ≤ 1/2 and n·p ≥ 10.
func btrs(r *rng.RNG, n int, p float64) int {
	q := 1 - p
	nf := float64(n)
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor(float64(n+1) * p)
	h := lgamma(m+1) + lgamma(nf-m+1)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		// Squeeze failed: exact log-acceptance test.
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgamma(kf+1)-lgamma(nf-kf+1)+(kf-m)*lpq {
			return int(kf)
		}
	}
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
