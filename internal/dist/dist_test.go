package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSamplerValidation(t *testing.T) {
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("NewNormal(0,0): want error")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NewNormal(NaN,1): want error")
	}
	if _, err := NewLogistic(0, -1); err == nil {
		t.Error("NewLogistic(0,-1): want error")
	}
	if _, err := NewUniform(1, 1); err == nil {
		t.Error("NewUniform(1,1): want error")
	}
	if _, err := NewUniform(2, 1); err == nil {
		t.Error("NewUniform(2,1): want error")
	}
}

func moments(t *testing.T, s Sampler, n int, seed uint64) (mean, variance float64) {
	t.Helper()
	r := rng.New(seed)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestNormalMoments(t *testing.T) {
	s, err := NewNormal(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := moments(t, s, 200000, 1)
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("mean %v, want ≈2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("variance %v, want ≈9", variance)
	}
}

func TestLogisticMoments(t *testing.T) {
	s, err := NewLogistic(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := moments(t, s, 200000, 2)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("mean %v, want ≈1", mean)
	}
	want := 0.25 * math.Pi * math.Pi / 3 // s²π²/3
	if math.Abs(variance-want) > 0.1 {
		t.Errorf("variance %v, want ≈%v", variance, want)
	}
}

func TestUniformRangeAndMoments(t *testing.T) {
	s, err := NewUniform(-1, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		x := s.Sample(r)
		if x < -1 || x >= 3 {
			t.Fatalf("sample %v outside [-1,3)", x)
		}
	}
	mean, variance := moments(t, s, 200000, 4)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("mean %v, want ≈1", mean)
	}
	if math.Abs(variance-16.0/12) > 0.05 {
		t.Errorf("variance %v, want ≈%v", variance, 16.0/12)
	}
}

func TestBetaMomentsAndSupport(t *testing.T) {
	cases := []Beta{{A: 1, B: 1}, {A: 2, B: 5}, {A: 0.5, B: 0.5}, {A: 30, B: 3}}
	for _, b := range cases {
		r := rng.New(5)
		var sum float64
		n := 100000
		for i := 0; i < n; i++ {
			x := b.Sample(r)
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("Beta{%v,%v} sample %v outside [0,1]", b.A, b.B, x)
			}
			sum += x
		}
		mean := sum / float64(n)
		want := b.A / (b.A + b.B)
		if math.Abs(mean-want) > 0.01 {
			t.Errorf("Beta{%v,%v} mean %v, want ≈%v", b.A, b.B, mean, want)
		}
	}
}

func TestBetaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Beta{0,1}.Sample: want panic")
		}
	}()
	Beta{A: 0, B: 1}.Sample(rng.New(1))
}
