package dist

import "repro/internal/rng"

// This file holds the block (v2 draw order) samplers: one draw pass
// covers a whole replication block, with per-lane rows stored
// structure-of-arrays (lane k's row of a lanes×m buffer is
// [k·m, (k+1)·m)). Per-lane draw sequences are the contract; the order
// lanes are visited in is immaterial because every lane draws from its
// own independent stream (rng.Striped).

// BinomialBlock fills out[k·m+j] with a Binomial(n[k·m+j], p[k·m+j])
// draw from lane k's stream, for all lanes lanes and m categories. Each
// lane consumes draws in ascending category order — the v2 contract for
// the block engines' stage-2 thinning — and only from its own stream,
// so any partition of the lanes into blocks replays bit-identically.
// Parameters are unchecked, like BinomialUnchecked: callers validate
// shapes and probability ranges at construction.
func BinomialBlock(s *rng.Striped, lanes, m int, n []int, p []float64, out []int) {
	for k := 0; k < lanes; k++ {
		r := s.Lane(k)
		row := k * m
		for j := 0; j < m; j++ {
			out[row+j] = BinomialUnchecked(r, n[row+j], p[row+j])
		}
	}
}
