package dist

// Tests for the sampler-object hot path: the reusable MultinomialSampler
// and Alias.Rebuild must consume exactly the RNG draw sequence of their
// allocate-per-call counterparts (the engines' bit-identity contract
// rides on it), BinomialUnchecked must match Binomial, and conditional-
// decomposition leftovers must never resurrect a zero-probability
// bucket.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBinomialUncheckedMatchesBinomial(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{0, 0.3}, {5, 0}, {5, 1}, {20, 0.2}, {20, 0.8}, // degenerate + direct loop
		{1000, 0.4}, {1000, 0.9}, // BTRS, both symmetry branches
		{100000, 0.0001}, // geometric skipping
		{31, 0.05},       // just past the direct-loop bound
	}
	for _, c := range cases {
		r1 := rng.New(7)
		r2 := rng.New(7)
		for i := 0; i < 200; i++ {
			want, err := Binomial(r1, c.n, c.p)
			if err != nil {
				t.Fatalf("Binomial(%d, %v): %v", c.n, c.p, err)
			}
			got := BinomialUnchecked(r2, c.n, c.p)
			if got != want {
				t.Fatalf("BinomialUnchecked(%d, %v) draw %d = %d, want %d", c.n, c.p, i, got, want)
			}
		}
		// Same draws consumed: the streams must still agree.
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("(%d, %v): checked and unchecked paths consumed different draw counts", c.n, c.p)
		}
	}
}

func TestMultinomialSamplerMatchesMultinomial(t *testing.T) {
	probsSets := [][]float64{
		{0.9, 0.05, 0.05},
		{0.25, 0.25, 0.25, 0.25},
		{1, 2, 3, 4, 5, 6, 7, 8}, // unnormalized weights
		{0.5, 0, 0.5},            // interior zero
	}
	for _, probs := range probsSets {
		s, err := NewMultinomialSampler(probs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(probs))
		r1 := rng.New(99)
		r2 := rng.New(99)
		for n := 0; n < 4000; n += 117 {
			want, err := Multinomial(r1, n, probs)
			if err != nil {
				t.Fatal(err)
			}
			s.SampleInto(r2, n, probs, out)
			for j := range want {
				if out[j] != want[j] {
					t.Fatalf("probs=%v n=%d: SampleInto[%d]=%d, want %d", probs, n, j, out[j], want[j])
				}
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("probs=%v: sampler consumed a different draw count", probs)
		}
	}
}

func TestMultinomialSamplerValidation(t *testing.T) {
	if _, err := NewMultinomialSampler(nil); err == nil {
		t.Fatal("empty prototype accepted")
	}
	if _, err := NewMultinomialSampler([]float64{0.5, math.NaN()}); err == nil {
		t.Fatal("NaN prototype accepted")
	}
	if _, err := NewMultinomialSampler([]float64{0, 0}); err == nil {
		t.Fatal("zero-sum prototype accepted")
	}
	s, err := NewMultinomialSampler([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	s.SampleInto(rng.New(1), 10, []float64{0.5, 0.5, 0.5}, make([]int, 3))
}

// TestMultinomialTrailingZeroBucket is the regression test for the
// leftover-dump bug: the decomposition loop can end with remaining > 0
// (floating-point dust in the running suffix sum leaves the last
// positive bucket's conditional probability fractionally below 1, and
// its binomial occasionally under-draws), and the pre-fix code credited
// those leftovers to out[m-1] even when probs[m-1] == 0 — resurrecting
// an option the distribution says is extinct.
func TestMultinomialTrailingZeroBucket(t *testing.T) {
	// Public-API property: zero-probability buckets stay empty and mass
	// is conserved, across trailing-, interior-, and leading-zero
	// shapes. (The dust event itself fires at ~n·2⁻⁵² per draw — real
	// across a fleet of million-step jobs, unreachable in a unit test —
	// so the deterministic seam test below forces it.)
	r := rng.New(3)
	for _, probs := range [][]float64{
		{0.1, 0.2, 0.3, 0, 0},
		{0.5, 0, 0.5, 0},
		{0, 0.7, 0.3, 0},
	} {
		for trial := 0; trial < 300; trial++ {
			out, err := Multinomial(r, 1000, probs)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for j, k := range out {
				sum += k
				if probs[j] == 0 && k != 0 {
					t.Fatalf("probs=%v: zero-probability bucket %d got %d draws", probs, j, k)
				}
			}
			if sum != 1000 {
				t.Fatalf("probs=%v: drew %d of 1000", probs, sum)
			}
		}
	}

	// Deterministic seam test: drive the sampling core with the exact
	// state the dust event produces — a positive remainingP carried
	// into an all-zero tail. With probs = {0.5, 0.5, 0} and an
	// inflated total, bucket 1's conditional probability is < 1, so
	// some trials leave remaining > 0 at the tail; the leftovers must
	// land in bucket 1 (the last positive bucket), not bucket 2.
	probs := []float64{0.5, 0.5, 0}
	total := 1.0 + 1e-9 // accumulated dust, exaggerated to make the leak frequent
	out := make([]int, 3)
	leaked := false
	for trial := 0; trial < 2000; trial++ {
		multinomialInto(r, 1000, probs, total, 1, out)
		if out[2] != 0 {
			t.Fatalf("trial %d: leftovers resurrected zero bucket: %v", trial, out)
		}
		if out[0]+out[1] != 1000 {
			t.Fatalf("trial %d: lost mass: %v", trial, out)
		}
		if out[0] != 1000 && out[0]+out[1] == 1000 {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("seam test never exercised the leftover path; increase the dust")
	}
}

func TestAliasRebuildMatchesNewAlias(t *testing.T) {
	weightSets := [][]float64{
		{1, 1, 1},
		{0.9, 0.05, 0.05},
		{5, 0, 3, 0, 2, 1, 0, 9},
		{1e-9, 1, 1e9},
	}
	reused := &Alias{}
	for _, weights := range weightSets {
		fresh, err := NewAlias(weights)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Rebuild(weights); err != nil {
			t.Fatal(err)
		}
		if fresh.Len() != reused.Len() {
			t.Fatalf("weights=%v: len %d != %d", weights, reused.Len(), fresh.Len())
		}
		r1 := rng.New(42)
		r2 := rng.New(42)
		for i := 0; i < 5000; i++ {
			if a, b := fresh.Sample(r1), reused.Sample(r2); a != b {
				t.Fatalf("weights=%v draw %d: rebuilt table sampled %d, fresh %d", weights, i, b, a)
			}
		}
	}
	if err := reused.Rebuild(nil); err == nil {
		t.Fatal("empty rebuild accepted")
	}
	if err := reused.Rebuild([]float64{-1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestAliasRebuildSteadyStateAllocs pins the zero-allocation contract
// the per-step engines rely on: after the first build, rebuilding with
// same-length weights allocates nothing.
func TestAliasRebuildSteadyStateAllocs(t *testing.T) {
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	// Let the worklist buffers reach their steady-state capacity.
	for i := 0; i < 4; i++ {
		weights[i%4] = 0.1 + float64(i%3)*0.3
		if err := a.Rebuild(weights); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Rebuild(weights); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Alias.Rebuild allocated %.1f times per call in steady state", allocs)
	}
}
