// Package dist supplies the distribution samplers the dynamics are
// built from: continuous reward/shock distributions (normal, logistic,
// uniform, beta) behind the Sampler interface, and the discrete
// primitives driving the aggregate engine — an exact binomial sampler
// that switches regime by (n, p), a conditional-binomial multinomial,
// and a Walker alias table for stage-one option sampling.
package dist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("dist: invalid parameter")

// Sampler draws one float64 variate per call.
type Sampler interface {
	Sample(r *rng.RNG) float64
}

// Normal is the N(mean, stddev²) distribution.
type Normal struct {
	mean, stddev float64
}

// NewNormal validates and returns a normal sampler (stddev > 0).
func NewNormal(mean, stddev float64) (*Normal, error) {
	if math.IsNaN(mean) || math.IsInf(mean, 0) || !(stddev > 0) || math.IsInf(stddev, 0) {
		return nil, fmt.Errorf("%w: normal(mean=%v, stddev=%v)", ErrBadParam, mean, stddev)
	}
	return &Normal{mean: mean, stddev: stddev}, nil
}

// Sample implements Sampler.
func (n *Normal) Sample(r *rng.RNG) float64 {
	return n.mean + n.stddev*r.NormFloat64()
}

// Mean returns the distribution mean.
func (n *Normal) Mean() float64 { return n.mean }

// StdDev returns the distribution standard deviation.
func (n *Normal) StdDev() float64 { return n.stddev }

// Logistic is the logistic distribution with location loc and scale s
// (CDF 1/(1+exp(−(x−loc)/s))), the natural shock law for logit-style
// adoption rules.
type Logistic struct {
	loc, scale float64
}

// NewLogistic validates and returns a logistic sampler (scale > 0).
func NewLogistic(loc, scale float64) (*Logistic, error) {
	if math.IsNaN(loc) || math.IsInf(loc, 0) || !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("%w: logistic(loc=%v, scale=%v)", ErrBadParam, loc, scale)
	}
	return &Logistic{loc: loc, scale: scale}, nil
}

// Sample implements Sampler by inverse-CDF.
func (l *Logistic) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	for u == 0 { // avoid −Inf from log(0)
		u = r.Float64()
	}
	return l.loc + l.scale*math.Log(u/(1-u))
}

// Uniform is the uniform distribution on [a, b).
type Uniform struct {
	a, b float64
}

// NewUniform validates and returns a uniform sampler (a < b).
func NewUniform(a, b float64) (*Uniform, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) || !(a < b) {
		return nil, fmt.Errorf("%w: uniform(%v, %v)", ErrBadParam, a, b)
	}
	return &Uniform{a: a, b: b}, nil
}

// Sample implements Sampler.
func (u *Uniform) Sample(r *rng.RNG) float64 {
	return u.a + (u.b-u.a)*r.Float64()
}

// Beta is the Beta(A, B) distribution (A, B > 0), used by Thompson
// sampling. The zero value is invalid; Sample panics on bad shapes the
// same way the stdlib panics on bad rand parameters.
type Beta struct {
	A, B float64
}

// Sample implements Sampler via two gamma draws.
func (b Beta) Sample(r *rng.RNG) float64 {
	if !(b.A > 0) || !(b.B > 0) {
		panic(fmt.Sprintf("dist: Beta{%v, %v} with non-positive shape", b.A, b.B))
	}
	x := gamma(r, b.A)
	y := gamma(r, b.B)
	if x+y == 0 {
		// Both underflowed; fall back on the mean.
		return b.A / (b.A + b.B)
	}
	return x / (x + y)
}

// gamma draws Gamma(shape, 1) by Marsaglia–Tsang, boosted for
// shape < 1 via Gamma(a) = Gamma(a+1)·U^{1/a}.
func gamma(r *rng.RNG, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
