package env

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestNewFaultyValidation(t *testing.T) {
	t.Parallel()

	inner, err := NewIIDBernoulli([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaulty(nil, 3); !errors.Is(err, ErrBadParam) {
		t.Error("nil inner accepted")
	}
	if _, err := NewFaulty(inner, 0); !errors.Is(err, ErrBadParam) {
		t.Error("failAt=0 accepted")
	}
}

func TestFaultyFailsAtConfiguredStep(t *testing.T) {
	t.Parallel()

	inner, err := NewIIDBernoulli([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaulty(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Options() != 2 || len(f.Qualities()) != 2 {
		t.Error("delegation broken")
	}
	r := rng.New(1)
	dst := make([]float64, 2)
	for i := 1; i <= 2; i++ {
		if err := f.Step(r, dst); err != nil {
			t.Fatalf("step %d failed early: %v", i, err)
		}
	}
	for i := 3; i <= 5; i++ {
		if err := f.Step(r, dst); !errors.Is(err, ErrInjected) {
			t.Fatalf("step %d: want ErrInjected, got %v", i, err)
		}
	}
}
