// Package env defines the reward environments the learning dynamics run
// against.
//
// The paper's base model (Section 2.1) draws, at every time step t and
// for every option j, an independent quality signal R^t_j ~
// Bernoulli(η_j). This package implements that model plus every variant
// the paper discusses:
//
//   - ExactlyOneGood: the correlated two-option structure of the
//     Ellison–Fudenberg example (footnote 3: exactly one of R^t_1, R^t_2
//     is 1 each step, independence across time suffices).
//   - ContinuousThreshold: continuous rewards plus player shocks reduced
//     to the binary model as in Section 2.1, example 2.
//   - Drifting / Switching: time-varying qualities, the extension named
//     in the conclusion.
//   - Adversarial: an arbitrary scripted reward sequence for contrasting
//     with the adversarial MWU setting.
//
// An Environment produces one vector of binary rewards per time step;
// the dynamics only ever observe these binary signals.
package env

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
)

var (
	// ErrBadQualities reports an invalid quality vector.
	ErrBadQualities = errors.New("env: invalid qualities")
	// ErrBadParam reports an out-of-domain environment parameter.
	ErrBadParam = errors.New("env: invalid parameter")
)

// Environment generates the per-step binary quality signals.
type Environment interface {
	// Options returns the number of options m.
	Options() int
	// Qualities returns the current success probabilities η_j. For
	// time-varying environments this reflects the most recent step.
	Qualities() []float64
	// Step draws the next reward vector R^{t+1} into dst, which must
	// have length Options(). The same vector is observed by every
	// individual that considers option j at this step, exactly as in
	// the paper (the signal is a property of the option, not of the
	// observer).
	Step(r *rng.RNG, dst []float64) error
}

// validateQualities checks η ∈ [0,1]^m, m >= 1.
func validateQualities(qualities []float64) error {
	if len(qualities) == 0 {
		return fmt.Errorf("%w: empty", ErrBadQualities)
	}
	for j, q := range qualities {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return fmt.Errorf("%w: eta[%d]=%v", ErrBadQualities, j, q)
		}
	}
	return nil
}

// IIDBernoulli is the paper's base environment: independent
// Bernoulli(η_j) signals each step.
type IIDBernoulli struct {
	qualities []float64
}

var _ Environment = (*IIDBernoulli)(nil)

// NewIIDBernoulli validates the qualities and returns the environment.
func NewIIDBernoulli(qualities []float64) (*IIDBernoulli, error) {
	if err := validateQualities(qualities); err != nil {
		return nil, err
	}
	q := make([]float64, len(qualities))
	copy(q, qualities)
	return &IIDBernoulli{qualities: q}, nil
}

// Options returns m.
func (e *IIDBernoulli) Options() int { return len(e.qualities) }

// Qualities returns a copy of η.
func (e *IIDBernoulli) Qualities() []float64 {
	out := make([]float64, len(e.qualities))
	copy(out, e.qualities)
	return out
}

// Step draws independent Bernoulli signals. The generator state is
// hoisted for the loop (rng.Local) and the Bernoulli clamps are kept
// exactly (q ≤ 0 and q ≥ 1 consume no draw), so the draw sequence
// matches per-option r.Bernoulli(q) calls bit for bit.
func (e *IIDBernoulli) Step(r *rng.RNG, dst []float64) error {
	if len(dst) != len(e.qualities) {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParam, len(dst), len(e.qualities))
	}
	x := r.Hoist()
	for j, q := range e.qualities {
		v := 0.0
		if q > 0 && (q >= 1 || x.Float64() < q) {
			v = 1
		}
		dst[j] = v
	}
	x.StoreTo(r)
	return nil
}

// ExactlyOneGood is the correlated two-option environment from the
// Ellison–Fudenberg reduction: each step exactly one option is good;
// option 1 is good with probability P (so η_1 = P, η_2 = 1−P).
type ExactlyOneGood struct {
	p float64
}

var _ Environment = (*ExactlyOneGood)(nil)

// NewExactlyOneGood validates p and returns the environment.
func NewExactlyOneGood(p float64) (*ExactlyOneGood, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: p=%v", ErrBadParam, p)
	}
	return &ExactlyOneGood{p: p}, nil
}

// Options returns 2.
func (e *ExactlyOneGood) Options() int { return 2 }

// Qualities returns {p, 1−p}.
func (e *ExactlyOneGood) Qualities() []float64 { return []float64{e.p, 1 - e.p} }

// Step sets exactly one coordinate to 1.
func (e *ExactlyOneGood) Step(r *rng.RNG, dst []float64) error {
	if len(dst) != 2 {
		return fmt.Errorf("%w: dst length %d, want 2", ErrBadParam, len(dst))
	}
	if r.Bernoulli(e.p) {
		dst[0], dst[1] = 1, 0
	} else {
		dst[0], dst[1] = 0, 1
	}
	return nil
}

// ContinuousThreshold implements the reduction of Section 2.1, example 2
// (Ellison–Fudenberg word-of-mouth learning). Two options pay continuous
// rewards r^t_j drawn from RewardDist_j each step. The binary signal is
// R^t_1 = 1{r^t_1 > r^t_2}. The derived model parameters are:
//
//	η_1 = P[r_1 > r_2],  η_2 = 1 − η_1,
//	β   = P[ξ > r_2 − r_1 | r_1 > r_2],
//	α   = P[ξ > r_2 − r_1 | r_2 > r_1],
//
// where ξ is the (zero-mean, symmetric) aggregate shock distribution.
// The structure also exposes the raw rewards of the latest step so the
// agent layer can implement the shock-based adoption rule directly.
type ContinuousThreshold struct {
	reward1, reward2 dist.Sampler
	lastR1, lastR2   float64
	etaEstimate      float64
}

var _ Environment = (*ContinuousThreshold)(nil)

// NewContinuousThreshold builds the environment. etaHint, if in (0,1),
// is reported by Qualities as the analytic η_1; it does not affect
// sampling.
func NewContinuousThreshold(reward1, reward2 dist.Sampler, etaHint float64) (*ContinuousThreshold, error) {
	if reward1 == nil || reward2 == nil {
		return nil, fmt.Errorf("%w: nil reward sampler", ErrBadParam)
	}
	if math.IsNaN(etaHint) || etaHint < 0 || etaHint > 1 {
		etaHint = 0.5
	}
	return &ContinuousThreshold{reward1: reward1, reward2: reward2, etaEstimate: etaHint}, nil
}

// Options returns 2.
func (e *ContinuousThreshold) Options() int { return 2 }

// Qualities returns the hinted {η_1, 1−η_1}.
func (e *ContinuousThreshold) Qualities() []float64 {
	return []float64{e.etaEstimate, 1 - e.etaEstimate}
}

// Step draws the continuous rewards and emits the threshold indicator.
func (e *ContinuousThreshold) Step(r *rng.RNG, dst []float64) error {
	if len(dst) != 2 {
		return fmt.Errorf("%w: dst length %d, want 2", ErrBadParam, len(dst))
	}
	e.lastR1 = e.reward1.Sample(r)
	e.lastR2 = e.reward2.Sample(r)
	if e.lastR1 > e.lastR2 {
		dst[0], dst[1] = 1, 0
	} else {
		dst[0], dst[1] = 0, 1
	}
	return nil
}

// LastRewards returns the continuous rewards drawn by the latest Step.
func (e *ContinuousThreshold) LastRewards() (r1, r2 float64) {
	return e.lastR1, e.lastR2
}

// Drifting wraps a base quality vector whose entries perform a bounded
// random walk with per-step standard deviation Sigma, reflected into
// [Floor, Ceil]. It models the conclusion's "qualities allowed to
// change" extension.
type Drifting struct {
	qualities []float64
	sigma     float64
	floor     float64
	ceil      float64
}

var _ Environment = (*Drifting)(nil)

// NewDrifting validates parameters and returns the environment.
func NewDrifting(initial []float64, sigma, floor, ceil float64) (*Drifting, error) {
	if err := validateQualities(initial); err != nil {
		return nil, err
	}
	if math.IsNaN(sigma) || sigma < 0 {
		return nil, fmt.Errorf("%w: sigma=%v", ErrBadParam, sigma)
	}
	if math.IsNaN(floor) || math.IsNaN(ceil) || floor < 0 || ceil > 1 || floor >= ceil {
		return nil, fmt.Errorf("%w: bounds [%v,%v]", ErrBadParam, floor, ceil)
	}
	q := make([]float64, len(initial))
	copy(q, initial)
	return &Drifting{qualities: q, sigma: sigma, floor: floor, ceil: ceil}, nil
}

// Options returns m.
func (e *Drifting) Options() int { return len(e.qualities) }

// Qualities returns a copy of the current η.
func (e *Drifting) Qualities() []float64 {
	out := make([]float64, len(e.qualities))
	copy(out, e.qualities)
	return out
}

// Step advances the random walk, then draws Bernoulli signals.
func (e *Drifting) Step(r *rng.RNG, dst []float64) error {
	if len(dst) != len(e.qualities) {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParam, len(dst), len(e.qualities))
	}
	for j := range e.qualities {
		q := e.qualities[j] + e.sigma*r.NormFloat64()
		e.qualities[j] = reflect(q, e.floor, e.ceil)
		if r.Bernoulli(e.qualities[j]) {
			dst[j] = 1
		} else {
			dst[j] = 0
		}
	}
	return nil
}

// reflect folds x into [lo, hi] by reflection at the boundaries.
func reflect(x, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	// Fold x into the fundamental domain of the reflection group: the
	// reflected walk has period 2*(hi-lo).
	width := hi - lo
	y := math.Mod(x-lo, 2*width)
	if y < 0 {
		y += 2 * width
	}
	if y > width {
		y = 2*width - y
	}
	return lo + y
}

// Switching permutes which option is best every Period steps: the
// quality vector rotates by one position. It exercises tracking
// behaviour under abrupt change.
type Switching struct {
	qualities []float64
	period    int
	step      int
}

var _ Environment = (*Switching)(nil)

// NewSwitching validates parameters and returns the environment.
func NewSwitching(qualities []float64, period int) (*Switching, error) {
	if err := validateQualities(qualities); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("%w: period=%d", ErrBadParam, period)
	}
	q := make([]float64, len(qualities))
	copy(q, qualities)
	return &Switching{qualities: q, period: period}, nil
}

// Options returns m.
func (e *Switching) Options() int { return len(e.qualities) }

// Qualities returns a copy of the current η.
func (e *Switching) Qualities() []float64 {
	out := make([]float64, len(e.qualities))
	copy(out, e.qualities)
	return out
}

// Step rotates the qualities at period boundaries then draws signals.
func (e *Switching) Step(r *rng.RNG, dst []float64) error {
	if len(dst) != len(e.qualities) {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParam, len(dst), len(e.qualities))
	}
	if e.step > 0 && e.step%e.period == 0 && len(e.qualities) > 1 {
		last := e.qualities[len(e.qualities)-1]
		copy(e.qualities[1:], e.qualities[:len(e.qualities)-1])
		e.qualities[0] = last
	}
	e.step++
	for j, q := range e.qualities {
		if r.Bernoulli(q) {
			dst[j] = 1
		} else {
			dst[j] = 0
		}
	}
	return nil
}

// Scripted replays a fixed reward matrix (adversarial setting). After the
// script is exhausted it repeats from the beginning.
type Scripted struct {
	rewards [][]float64
	step    int
}

var _ Environment = (*Scripted)(nil)

// NewScripted validates the reward matrix (non-empty, rectangular,
// entries in {0,1}) and returns the environment.
func NewScripted(rewards [][]float64) (*Scripted, error) {
	if len(rewards) == 0 || len(rewards[0]) == 0 {
		return nil, fmt.Errorf("%w: empty script", ErrBadParam)
	}
	m := len(rewards[0])
	cp := make([][]float64, len(rewards))
	for t, row := range rewards {
		if len(row) != m {
			return nil, fmt.Errorf("%w: ragged script row %d", ErrBadParam, t)
		}
		cp[t] = make([]float64, m)
		for j, v := range row {
			if v != 0 && v != 1 {
				return nil, fmt.Errorf("%w: script[%d][%d]=%v not binary", ErrBadParam, t, j, v)
			}
			cp[t][j] = v
		}
	}
	return &Scripted{rewards: cp}, nil
}

// Options returns m.
func (e *Scripted) Options() int { return len(e.rewards[0]) }

// Qualities returns the per-option empirical mean of the script.
func (e *Scripted) Qualities() []float64 {
	m := e.Options()
	out := make([]float64, m)
	for _, row := range e.rewards {
		for j, v := range row {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(e.rewards))
	}
	return out
}

// Step copies the next scripted row.
func (e *Scripted) Step(_ *rng.RNG, dst []float64) error {
	if len(dst) != e.Options() {
		return fmt.Errorf("%w: dst length %d, want %d", ErrBadParam, len(dst), e.Options())
	}
	copy(dst, e.rewards[e.step%len(e.rewards)])
	e.step++
	return nil
}

// Recorder wraps an Environment and stores every reward vector it
// emits, so a second process can replay the exact same realization (the
// coupling construction of Lemma 4.5).
type Recorder struct {
	inner   Environment
	history [][]float64
}

var _ Environment = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner Environment) (*Recorder, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner environment", ErrBadParam)
	}
	return &Recorder{inner: inner}, nil
}

// Options returns the inner environment's option count.
func (e *Recorder) Options() int { return e.inner.Options() }

// Qualities returns the inner environment's qualities.
func (e *Recorder) Qualities() []float64 { return e.inner.Qualities() }

// Step delegates to the inner environment and records the result.
func (e *Recorder) Step(r *rng.RNG, dst []float64) error {
	if err := e.inner.Step(r, dst); err != nil {
		return err
	}
	row := make([]float64, len(dst))
	copy(row, dst)
	e.history = append(e.history, row)
	return nil
}

// History returns the recorded reward matrix (aliased, not copied; the
// recorder never mutates stored rows).
func (e *Recorder) History() [][]float64 { return e.history }
