package env

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// ErrInjected is the sentinel returned by a Faulty environment once its
// failure step is reached. Tests use it to verify that every simulation
// layer propagates environment failures instead of swallowing them.
var ErrInjected = errors.New("env: injected failure")

// Faulty wraps an Environment and fails permanently at a configured
// step. It models a broken telemetry source in a deployment and backs
// the failure-injection tests across the simulation engines.
type Faulty struct {
	inner   Environment
	failAt  int
	stepped int
}

var _ Environment = (*Faulty)(nil)

// NewFaulty wraps inner so that the failAt-th call to Step (1-based)
// and every later call return ErrInjected.
func NewFaulty(inner Environment, failAt int) (*Faulty, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner environment", ErrBadParam)
	}
	if failAt <= 0 {
		return nil, fmt.Errorf("%w: failAt=%d", ErrBadParam, failAt)
	}
	return &Faulty{inner: inner, failAt: failAt}, nil
}

// Options returns the inner environment's option count.
func (e *Faulty) Options() int { return e.inner.Options() }

// Qualities returns the inner environment's qualities.
func (e *Faulty) Qualities() []float64 { return e.inner.Qualities() }

// Step delegates until the failure step, then returns ErrInjected.
func (e *Faulty) Step(r *rng.RNG, dst []float64) error {
	e.stepped++
	if e.stepped >= e.failAt {
		return fmt.Errorf("%w at step %d", ErrInjected, e.stepped)
	}
	return e.inner.Step(r, dst)
}
