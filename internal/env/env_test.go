package env

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

func TestNewIIDBernoulliValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewIIDBernoulli(nil); !errors.Is(err, ErrBadQualities) {
		t.Error("empty qualities accepted")
	}
	if _, err := NewIIDBernoulli([]float64{0.5, 1.2}); !errors.Is(err, ErrBadQualities) {
		t.Error("eta > 1 accepted")
	}
	if _, err := NewIIDBernoulli([]float64{-0.1}); !errors.Is(err, ErrBadQualities) {
		t.Error("negative eta accepted")
	}
	e, err := NewIIDBernoulli([]float64{0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options() != 2 {
		t.Errorf("Options = %d, want 2", e.Options())
	}
}

func TestIIDBernoulliFrequencies(t *testing.T) {
	t.Parallel()

	qualities := []float64{0.9, 0.5, 0.1, 0, 1}
	e, err := NewIIDBernoulli(qualities)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const steps = 100000
	sums := make([]float64, len(qualities))
	dst := make([]float64, len(qualities))
	for i := 0; i < steps; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
		for j, v := range dst {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary signal %v", v)
			}
			sums[j] += v
		}
	}
	for j, q := range qualities {
		got := sums[j] / steps
		if math.Abs(got-q) > 0.01 {
			t.Errorf("option %d frequency %v, want ~%v", j, got, q)
		}
	}
}

func TestIIDBernoulliQualitiesCopied(t *testing.T) {
	t.Parallel()

	in := []float64{0.7, 0.3}
	e, err := NewIIDBernoulli(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 0 // caller mutation must not leak in
	q := e.Qualities()
	if q[0] != 0.7 {
		t.Error("constructor did not copy qualities")
	}
	q[1] = 0 // returned slice mutation must not leak back
	if e.Qualities()[1] != 0.3 {
		t.Error("Qualities did not return a copy")
	}
}

func TestIIDBernoulliStepDstLength(t *testing.T) {
	t.Parallel()

	e, err := NewIIDBernoulli([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(rng.New(1), make([]float64, 3)); !errors.Is(err, ErrBadParam) {
		t.Error("wrong dst length accepted")
	}
}

func TestExactlyOneGood(t *testing.T) {
	t.Parallel()

	if _, err := NewExactlyOneGood(1.5); !errors.Is(err, ErrBadParam) {
		t.Error("p > 1 accepted")
	}
	e, err := NewExactlyOneGood(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Qualities(); got[0] != 0.7 || math.Abs(got[1]-0.3) > 1e-12 {
		t.Errorf("Qualities = %v", got)
	}
	r := rng.New(2)
	dst := make([]float64, 2)
	const steps = 100000
	ones := 0.0
	for i := 0; i < steps; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0]+dst[1] != 1 {
			t.Fatalf("not exactly one good: %v", dst)
		}
		ones += dst[0]
	}
	if got := ones / steps; math.Abs(got-0.7) > 0.01 {
		t.Errorf("option 1 good frequency %v, want ~0.7", got)
	}
}

func TestContinuousThreshold(t *testing.T) {
	t.Parallel()

	if _, err := NewContinuousThreshold(nil, nil, 0.5); !errors.Is(err, ErrBadParam) {
		t.Error("nil samplers accepted")
	}
	r1, err := dist.NewNormal(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dist.NewNormal(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P[r1 > r2] = Phi(1/sqrt(2)) ≈ 0.7602.
	wantEta := 0.7602
	e, err := NewContinuousThreshold(r1, r2, wantEta)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Qualities()[0]; got != wantEta {
		t.Errorf("hinted eta = %v, want %v", got, wantEta)
	}
	r := rng.New(3)
	dst := make([]float64, 2)
	const steps = 100000
	ones := 0.0
	for i := 0; i < steps; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0]+dst[1] != 1 {
			t.Fatalf("threshold signal not exactly-one-good: %v", dst)
		}
		a, b := e.LastRewards()
		if (a > b) != (dst[0] == 1) {
			t.Fatal("signal inconsistent with recorded rewards")
		}
		ones += dst[0]
	}
	if got := ones / steps; math.Abs(got-wantEta) > 0.01 {
		t.Errorf("empirical eta = %v, want ~%v", got, wantEta)
	}
}

func TestDriftingStaysBounded(t *testing.T) {
	t.Parallel()

	if _, err := NewDrifting([]float64{0.5}, -1, 0.1, 0.9); !errors.Is(err, ErrBadParam) {
		t.Error("negative sigma accepted")
	}
	if _, err := NewDrifting([]float64{0.5}, 0.1, 0.9, 0.1); !errors.Is(err, ErrBadParam) {
		t.Error("inverted bounds accepted")
	}
	e, err := NewDrifting([]float64{0.5, 0.3}, 0.05, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	dst := make([]float64, 2)
	for i := 0; i < 10000; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
		for j, q := range e.Qualities() {
			if q < 0.1-1e-12 || q > 0.9+1e-12 {
				t.Fatalf("step %d: quality[%d]=%v escaped [0.1,0.9]", i, j, q)
			}
		}
	}
}

func TestDriftingActuallyMoves(t *testing.T) {
	t.Parallel()

	e, err := NewDrifting([]float64{0.5}, 0.05, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	dst := make([]float64, 1)
	moved := false
	for i := 0; i < 100; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.Qualities()[0]-0.5) > 0.01 {
			moved = true
		}
	}
	if !moved {
		t.Error("drifting qualities never moved")
	}
}

func TestSwitchingRotates(t *testing.T) {
	t.Parallel()

	if _, err := NewSwitching([]float64{0.5}, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero period accepted")
	}
	e, err := NewSwitching([]float64{0.9, 0.5, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	dst := make([]float64, 3)
	// Steps 1,2 use the original order; the rotation happens entering
	// step 3.
	for i := 0; i < 2; i++ {
		if err := e.Step(r, dst); err != nil {
			t.Fatal(err)
		}
	}
	if q := e.Qualities(); q[0] != 0.9 {
		t.Fatalf("rotated too early: %v", q)
	}
	if err := e.Step(r, dst); err != nil {
		t.Fatal(err)
	}
	if q := e.Qualities(); q[0] != 0.1 || q[1] != 0.9 || q[2] != 0.5 {
		t.Fatalf("after period: qualities = %v, want rotated [0.1 0.9 0.5]", q)
	}
}

func TestScripted(t *testing.T) {
	t.Parallel()

	if _, err := NewScripted(nil); !errors.Is(err, ErrBadParam) {
		t.Error("empty script accepted")
	}
	if _, err := NewScripted([][]float64{{1, 0}, {1}}); !errors.Is(err, ErrBadParam) {
		t.Error("ragged script accepted")
	}
	if _, err := NewScripted([][]float64{{0.5, 0}}); !errors.Is(err, ErrBadParam) {
		t.Error("non-binary script accepted")
	}
	script := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	e, err := NewScripted(script)
	if err != nil {
		t.Fatal(err)
	}
	if q := e.Qualities(); math.Abs(q[0]-2.0/3) > 1e-12 || math.Abs(q[1]-2.0/3) > 1e-12 {
		t.Errorf("Qualities = %v", q)
	}
	dst := make([]float64, 2)
	for cycle := 0; cycle < 2; cycle++ {
		for step := 0; step < 3; step++ {
			if err := e.Step(nil, dst); err != nil {
				t.Fatal(err)
			}
			if dst[0] != script[step][0] || dst[1] != script[step][1] {
				t.Fatalf("cycle %d step %d: got %v, want %v", cycle, step, dst, script[step])
			}
		}
	}
}

func TestRecorder(t *testing.T) {
	t.Parallel()

	if _, err := NewRecorder(nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil inner accepted")
	}
	inner, err := NewIIDBernoulli([]float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(inner)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Options() != 2 {
		t.Errorf("Options = %d", rec.Options())
	}
	r := rng.New(7)
	dst := make([]float64, 2)
	const steps = 50
	for i := 0; i < steps; i++ {
		if err := rec.Step(r, dst); err != nil {
			t.Fatal(err)
		}
	}
	hist := rec.History()
	if len(hist) != steps {
		t.Fatalf("history length %d, want %d", len(hist), steps)
	}
	// Replaying the history through Scripted must reproduce it.
	replay, err := NewScripted(hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if err := replay.Step(nil, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != hist[i][0] || dst[1] != hist[i][1] {
			t.Fatalf("replay diverged at step %d", i)
		}
	}
}

func TestReflectProperties(t *testing.T) {
	t.Parallel()

	f := func(xRaw int32, loRaw, span uint8) bool {
		lo := float64(loRaw) / 512
		width := float64(span)/512 + 0.01
		hi := lo + width
		x := float64(xRaw) / 1000
		y := reflect(x, lo, hi)
		return y >= lo-1e-9 && y <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// In-range values are unchanged.
	if got := reflect(0.5, 0, 1); got != 0.5 {
		t.Errorf("reflect(0.5) = %v", got)
	}
	// Single bounce below and above.
	if got := reflect(-0.2, 0, 1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("reflect(-0.2) = %v, want 0.2", got)
	}
	if got := reflect(1.3, 0, 1); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("reflect(1.3) = %v, want 0.7", got)
	}
}
