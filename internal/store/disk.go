package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Disk is a crash-safe append-only segment log implementing
// Store[[]byte]: records are (key, value) pairs appended to the
// active segment, an in-memory index maps each key to its newest
// record, and the index is rebuilt by scanning the segments on open.
// Every record carries a CRC32 (Castagnoli) over its header and
// payload, so a torn write — a crash mid-append — is detected on the
// next open and the tail is truncated at the last intact record
// rather than trusted. A byte budget is enforced at segment
// granularity: when the log exceeds MaxBytes the oldest sealed
// segment is either compacted (its live records rewritten to the
// tail, its file dropped) when mostly dead, or evicted wholesale
// when mostly live — cache semantics make dropping old entries safe.
//
// Durability is batched: Put appends to the OS page cache and a
// background flusher fsyncs the active segment every FlushInterval,
// so Put never waits on the disk. A crash can lose the last interval
// of writes but never corrupts what a previous fsync covered.
type Disk struct {
	dir        string
	maxBytes   int64
	segMax     int64
	flushEvery time.Duration

	mu         sync.Mutex
	index      map[string]recordLoc
	segs       map[int]*segment
	segIDs     []int // ascending; last is the active (append) segment
	totalBytes int64
	dirty      bool
	closed     bool

	flushStop chan struct{}
	flushDone chan struct{}
	closeOnce sync.Once

	hits, readErrors, truncated         uint64
	compactions, segsDropped, evictions uint64
}

// Record layout, big-endian:
//
//	crc    uint32  over keyLen..value
//	keyLen uint16
//	valLen uint32
//	key    keyLen bytes
//	value  valLen bytes
const recordHeaderSize = 10

// maxKeyLen bounds keys to what a uint16 length can carry.
const maxKeyLen = 1<<16 - 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type recordLoc struct {
	segID int
	off   int64
	size  int64
}

type segment struct {
	id        int
	path      string
	f         *os.File
	size      int64 // bytes appended (the tail offset)
	liveBytes int64 // bytes of records the index still points at
	liveKeys  int
}

// DiskOptions tunes the segment log.
type DiskOptions struct {
	// MaxBytes caps the total size of all segment files; 0 means
	// unlimited. Exceeding it triggers segment-granularity GC.
	MaxBytes int64
	// SegmentMaxBytes is the roll threshold of the active segment.
	// 0 picks a default: MaxBytes/8 clamped to [64 KiB, 64 MiB].
	SegmentMaxBytes int64
	// FlushInterval is the fsync batching period. 0 picks the 100 ms
	// default; negative fsyncs synchronously on every Put (tests).
	FlushInterval time.Duration
}

const (
	defaultFlushInterval = 100 * time.Millisecond
	minSegmentBytes      = 64 << 10
	maxSegmentBytes      = 64 << 20
)

// OpenDisk opens (creating if needed) a segment log in dir and
// rebuilds the key index from the segments on disk, truncating any
// torn or corrupt tail it finds.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty store dir", ErrBadStore)
	}
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("%w: max bytes=%d", ErrBadStore, opts.MaxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	segMax := opts.SegmentMaxBytes
	if segMax <= 0 {
		segMax = opts.MaxBytes / 8
		if segMax < minSegmentBytes {
			segMax = minSegmentBytes
		}
		if segMax > maxSegmentBytes {
			segMax = maxSegmentBytes
		}
	}
	flush := opts.FlushInterval
	if flush == 0 {
		flush = defaultFlushInterval
	}
	d := &Disk{
		dir:        dir,
		maxBytes:   opts.MaxBytes,
		segMax:     segMax,
		flushEvery: flush,
		index:      make(map[string]recordLoc),
		segs:       make(map[int]*segment),
	}
	if err := d.load(); err != nil {
		d.closeFiles()
		return nil, err
	}
	if len(d.segIDs) == 0 {
		if _, err := d.addSegment(1); err != nil {
			return nil, err
		}
	}
	if d.flushEvery > 0 {
		d.flushStop = make(chan struct{})
		d.flushDone = make(chan struct{})
		go d.flusher()
	}
	return d, nil
}

// segPath names segment id's file.
func (d *Disk) segPath(id int) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%08d.log", id))
}

// load scans the existing segments in id order, rebuilding the index.
func (d *Disk) load() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: read dir: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, err := fmt.Sscanf(e.Name(), "seg-%08d.log", &id); n == 1 && err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		seg, err := d.addSegment(id)
		if err != nil {
			return err
		}
		if err := d.scanSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

// addSegment opens (creating if absent) segment id and appends it as
// the new active segment.
func (d *Disk) addSegment(id int) (*segment, error) {
	path := d.segPath(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	d.segs[id] = seg
	d.segIDs = append(d.segIDs, id)
	return seg, nil
}

// active returns the append segment.
func (d *Disk) active() *segment {
	return d.segs[d.segIDs[len(d.segIDs)-1]]
}

// scanSegment replays one segment into the index. The first record
// that fails to parse or verify — a torn tail after a crash, or
// bitrot — truncates the segment there: the intact prefix is trusted,
// the rest is dropped.
func (d *Disk) scanSegment(seg *segment) error {
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat segment: %w", err)
	}
	fileSize := info.Size()
	var off int64
	var hdr [recordHeaderSize]byte
	buf := make([]byte, 0, 4096)
	for off < fileSize {
		ok := func() bool {
			if fileSize-off < recordHeaderSize {
				return false
			}
			if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
				return false
			}
			keyLen := int64(binary.BigEndian.Uint16(hdr[4:6]))
			valLen := int64(binary.BigEndian.Uint32(hdr[6:10]))
			size := recordHeaderSize + keyLen + valLen
			if keyLen == 0 || off+size > fileSize {
				return false
			}
			if int64(cap(buf)) < keyLen+valLen {
				buf = make([]byte, keyLen+valLen)
			}
			body := buf[:keyLen+valLen]
			if _, err := seg.f.ReadAt(body, off+recordHeaderSize); err != nil {
				return false
			}
			crc := crc32.Checksum(hdr[4:], crcTable)
			crc = crc32.Update(crc, crcTable, body)
			if crc != binary.BigEndian.Uint32(hdr[0:4]) {
				return false
			}
			d.indexRecord(string(body[:keyLen]), recordLoc{segID: seg.id, off: off, size: size}, seg)
			off += size
			return true
		}()
		if !ok {
			d.truncated++
			if err := seg.f.Truncate(off); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
			break
		}
	}
	seg.size = off
	d.totalBytes += off
	return nil
}

// indexRecord points key at loc, retiring any older record.
func (d *Disk) indexRecord(key string, loc recordLoc, seg *segment) {
	if old, ok := d.index[key]; ok {
		if prev := d.segs[old.segID]; prev != nil {
			prev.liveBytes -= old.size
			prev.liveKeys--
		}
	}
	d.index[key] = loc
	seg.liveBytes += loc.size
	seg.liveKeys++
}

// Get returns the newest value stored for key. Read or verification
// failures are served as misses (counted in Stats), never as errors:
// the caller can always recompute a cache entry.
func (d *Disk) Get(key string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false
	}
	loc, ok := d.index[key]
	if !ok {
		return nil, false
	}
	val, err := d.readRecord(key, loc)
	if err != nil {
		d.readErrors++
		return nil, false
	}
	d.hits++
	return val, true
}

// readRecord fetches and verifies one record under d.mu.
func (d *Disk) readRecord(key string, loc recordLoc) ([]byte, error) {
	seg := d.segs[loc.segID]
	if seg == nil {
		return nil, fmt.Errorf("store: segment %d gone", loc.segID)
	}
	buf := make([]byte, loc.size)
	if _, err := seg.f.ReadAt(buf, loc.off); err != nil {
		return nil, err
	}
	keyLen := int64(binary.BigEndian.Uint16(buf[4:6]))
	crc := crc32.Checksum(buf[4:], crcTable)
	if crc != binary.BigEndian.Uint32(buf[0:4]) {
		return nil, errors.New("store: crc mismatch")
	}
	if string(buf[recordHeaderSize:recordHeaderSize+keyLen]) != key {
		return nil, errors.New("store: index points at wrong key")
	}
	return buf[recordHeaderSize+keyLen:], nil
}

// Put appends a record for key. The write lands in the OS page cache
// immediately (readable by Get); the fsync is batched.
func (d *Disk) Put(key string, value []byte) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if err := d.appendRecord(key, value); err != nil {
		d.readErrors++ // an append failure surfaces like a lost record
		return
	}
	d.gc()
	if d.flushEvery < 0 {
		_ = d.active().f.Sync()
	} else {
		d.dirty = true
	}
}

// appendRecord writes one record to the active segment (rolling it at
// the size threshold) and indexes it. Called with d.mu held.
func (d *Disk) appendRecord(key string, value []byte) error {
	size := int64(recordHeaderSize + len(key) + len(value))
	seg := d.active()
	if seg.size > 0 && seg.size+size > d.segMax {
		var err error
		if seg, err = d.roll(); err != nil {
			return err
		}
	}
	rec := make([]byte, size)
	binary.BigEndian.PutUint16(rec[4:6], uint16(len(key)))
	binary.BigEndian.PutUint32(rec[6:10], uint32(len(value)))
	copy(rec[recordHeaderSize:], key)
	copy(rec[recordHeaderSize+len(key):], value)
	binary.BigEndian.PutUint32(rec[0:4], crc32.Checksum(rec[4:], crcTable))
	if _, err := seg.f.WriteAt(rec, seg.size); err != nil {
		return err
	}
	loc := recordLoc{segID: seg.id, off: seg.size, size: size}
	seg.size += size
	d.totalBytes += size
	d.indexRecord(key, loc, seg)
	return nil
}

// roll seals the active segment (syncing it — sealed segments are
// never written again, so their contents are durable from here on)
// and opens the next one.
func (d *Disk) roll() (*segment, error) {
	_ = d.active().f.Sync()
	return d.addSegment(d.active().id + 1)
}

// gc enforces the byte budget at segment granularity: the oldest
// sealed segment is compacted (live records rewritten to the tail)
// when at most half its bytes are live, or evicted wholesale — its
// live keys dropped from the index — when mostly live. Either way the
// victim file is deleted, so each pass strictly shrinks the log.
// Called with d.mu held.
func (d *Disk) gc() {
	if d.maxBytes <= 0 {
		return
	}
	for d.totalBytes > d.maxBytes {
		if len(d.segIDs) == 1 {
			if d.active().size == 0 {
				return
			}
			if _, err := d.roll(); err != nil {
				return
			}
		}
		victim := d.segs[d.segIDs[0]]
		if 2*victim.liveBytes <= victim.size {
			if !d.compact(victim) {
				return
			}
			d.compactions++
		} else {
			d.evictSegment(victim)
		}
		d.dropSegment(victim)
		d.segsDropped++
	}
}

// compact rewrites victim's live records into the active segment.
func (d *Disk) compact(victim *segment) bool {
	type liveRec struct {
		key string
		loc recordLoc
	}
	var live []liveRec
	for key, loc := range d.index {
		if loc.segID == victim.id {
			live = append(live, liveRec{key, loc})
		}
	}
	// Oldest-first keeps relative record order across compactions.
	sort.Slice(live, func(i, j int) bool { return live[i].loc.off < live[j].loc.off })
	for _, r := range live {
		val, err := d.readRecord(r.key, r.loc)
		if err != nil {
			// Unreadable record: drop the key rather than abort GC.
			d.readErrors++
			delete(d.index, r.key)
			victim.liveBytes -= r.loc.size
			victim.liveKeys--
			continue
		}
		if err := d.appendRecord(r.key, val); err != nil {
			return false
		}
	}
	return true
}

// evictSegment drops every live key still pointing into victim.
func (d *Disk) evictSegment(victim *segment) {
	for key, loc := range d.index {
		if loc.segID == victim.id {
			delete(d.index, key)
			d.evictions++
		}
	}
	victim.liveBytes = 0
	victim.liveKeys = 0
}

// dropSegment removes victim's file and accounting. Called with d.mu
// held; victim must hold no live records.
func (d *Disk) dropSegment(victim *segment) {
	_ = victim.f.Close()
	_ = os.Remove(victim.path)
	d.totalBytes -= victim.size
	delete(d.segs, victim.id)
	for i, id := range d.segIDs {
		if id == victim.id {
			d.segIDs = append(d.segIDs[:i], d.segIDs[i+1:]...)
			break
		}
	}
}

// flusher batches fsyncs of the active segment.
func (d *Disk) flusher() {
	defer close(d.flushDone)
	ticker := time.NewTicker(d.flushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			d.mu.Lock()
			var f *os.File
			if d.dirty && !d.closed {
				d.dirty = false
				f = d.active().f
			}
			d.mu.Unlock()
			if f != nil {
				// Outside the lock: an fsync must not stall Gets and
				// Puts. If a roll or Close races us, syncing the old
				// handle is harmless (roll syncs seals itself) and a
				// closed handle just returns an error to ignore.
				_ = f.Sync()
			}
		case <-d.flushStop:
			return
		}
	}
}

// Sync forces an fsync of the active segment (tests and shutdown).
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.dirty = false
	return d.active().f.Sync()
}

// Len returns the number of live keys.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Stats snapshots the counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		DiskLen:          len(d.index),
		DiskHits:         d.hits,
		DiskBytes:        d.totalBytes,
		DiskSegments:     len(d.segIDs),
		Compactions:      d.compactions,
		SegmentsDropped:  d.segsDropped,
		DiskEvictions:    d.evictions,
		ReadErrors:       d.readErrors,
		TruncatedRecords: d.truncated,
	}
}

// Close stops the flusher, fsyncs, and closes every segment file.
// Idempotent and safe for concurrent callers.
func (d *Disk) Close() error {
	var err error
	d.closeOnce.Do(func() {
		if d.flushStop != nil {
			close(d.flushStop)
			<-d.flushDone
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		d.closed = true
		err = d.active().f.Sync()
		d.closeFiles()
	})
	return err
}

// closeFiles closes every open segment handle. Called with d.mu held
// (or before the store is shared).
func (d *Disk) closeFiles() {
	for _, seg := range d.segs {
		_ = seg.f.Close()
	}
}

// Dir returns the directory backing the log.
func (d *Disk) Dir() string { return d.dir }
