package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMemoryLRU(t *testing.T) {
	t.Parallel()
	m, err := NewMemory[int](2)
	if err != nil {
		t.Fatal(err)
	}
	m.Put("a", 1)
	m.Put("b", 2)
	if _, ok := m.Get("a"); !ok { // bump a's recency
		t.Fatal("a missing")
	}
	m.Put("c", 3) // evicts b, the least recently used
	if _, ok := m.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d, %v", v, ok)
	}
	if v, ok := m.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %v", v, ok)
	}
	st := m.Stats()
	if st.MemEvictions != 1 || st.MemLen != 2 || st.MemCapacity != 2 {
		t.Errorf("stats %+v", st)
	}
	if _, err := NewMemory[int](-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestMemoryZeroCapacity(t *testing.T) {
	t.Parallel()
	m, err := NewMemory[int](0)
	if err != nil {
		t.Fatal(err)
	}
	m.Put("a", 1)
	if _, ok := m.Get("a"); ok {
		t.Error("zero-capacity memory stored a value")
	}
	if m.Len() != 0 {
		t.Error("non-empty")
	}
}

// syncDisk opens a disk store that fsyncs every Put, so tests see
// durable state without sleeping for the flush interval.
func syncDisk(t *testing.T, dir string, maxBytes int64) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, DiskOptions{MaxBytes: maxBytes, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func TestDiskPutGetReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := syncDisk(t, dir, 0)
	want := map[string][]byte{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%03d", i)
		val := []byte(fmt.Sprintf("value-%d-%s", i, string(make([]byte, i))))
		d.Put(key, val)
		want[key] = val
	}
	// Overwrite some keys; the newest record must win after reopen.
	d.Put("key-007", []byte("rewritten"))
	want["key-007"] = []byte("rewritten")

	check := func(d *Disk) {
		t.Helper()
		if d.Len() != len(want) {
			t.Fatalf("len=%d want %d", d.Len(), len(want))
		}
		for key, val := range want {
			got, ok := d.Get(key)
			if !ok || !bytes.Equal(got, val) {
				t.Fatalf("Get(%s) = %q, %v; want %q", key, got, ok, val)
			}
		}
	}
	check(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	check(syncDisk(t, dir, 0))
}

// TestDiskCrashRecoveryTornTail is the crash-safety regression the
// subsystem is built around: N results land on disk, the process
// "crashes" mid-append (simulated by truncating the last segment
// inside the final record), and the reopened store must serve the
// intact prefix while dropping — not trusting — the torn tail.
func TestDiskCrashRecoveryTornTail(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := syncDisk(t, dir, 0)
	const n = 20
	var keys []string
	recSize := func(key, val string) int64 {
		return int64(recordHeaderSize + len(key) + len(val))
	}
	var lastKey, lastVal string
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("spec-%04d", i)
		val := fmt.Sprintf(`{"regret":%d.5,"popularity":[0.9,0.1]}`, i)
		d.Put(key, []byte(val))
		keys = append(keys, key)
		lastKey, lastVal = key, val
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop into the middle of the last record's value.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	torn := info.Size() - recSize(lastKey, lastVal)/2
	if err := os.Truncate(last, torn); err != nil {
		t.Fatal(err)
	}

	re := syncDisk(t, dir, 0)
	if re.Len() != n-1 {
		t.Fatalf("reopened len=%d, want %d (torn tail dropped)", re.Len(), n-1)
	}
	for _, key := range keys[:n-1] {
		if _, ok := re.Get(key); !ok {
			t.Errorf("intact record %s lost", key)
		}
	}
	if _, ok := re.Get(lastKey); ok {
		t.Errorf("torn record %s served", lastKey)
	}
	st := re.Stats()
	if st.TruncatedRecords == 0 {
		t.Errorf("truncation not counted: %+v", st)
	}
	// The store must keep working after recovery: the torn key can be
	// rewritten and survives another reopen.
	re.Put(lastKey, []byte(lastVal))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := syncDisk(t, dir, 0)
	if got, ok := re2.Get(lastKey); !ok || string(got) != lastVal {
		t.Fatalf("rewritten key after recovery: %q, %v", got, ok)
	}
	if re2.Len() != n {
		t.Fatalf("post-recovery len=%d, want %d", re2.Len(), n)
	}
}

// TestDiskCorruptTail flips a byte in the last record (same length,
// bad CRC) and checks the reopened index drops exactly that record.
func TestDiskCorruptTail(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := syncDisk(t, dir, 0)
	d.Put("good", []byte("kept"))
	d.Put("bad", []byte("flipped"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	raw, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(segs[len(segs)-1], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re := syncDisk(t, dir, 0)
	if _, ok := re.Get("bad"); ok {
		t.Error("corrupt record served")
	}
	if v, ok := re.Get("good"); !ok || string(v) != "kept" {
		t.Errorf("intact record: %q, %v", v, ok)
	}
}

// TestDiskGCBudget drives the log far past its byte budget and checks
// segment-granularity GC holds the size down while the newest entries
// stay readable.
func TestDiskGCBudget(t *testing.T) {
	t.Parallel()
	const maxBytes = 64 << 10
	d, err := OpenDisk(t.TempDir(), DiskOptions{
		MaxBytes:        maxBytes,
		SegmentMaxBytes: 8 << 10,
		FlushInterval:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	val := make([]byte, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		d.Put(fmt.Sprintf("key-%05d", i), val)
	}
	st := d.Stats()
	// After GC settles the log may exceed the budget by at most one
	// in-progress segment.
	if st.DiskBytes > maxBytes+(8<<10) {
		t.Errorf("disk bytes %d way over budget %d: %+v", st.DiskBytes, maxBytes, st)
	}
	if st.SegmentsDropped == 0 {
		t.Errorf("no segments dropped: %+v", st)
	}
	if st.DiskLen == 0 || st.DiskLen == n {
		t.Errorf("disk len %d: eviction should drop old keys but keep recent ones", st.DiskLen)
	}
	// The newest key always survives.
	if _, ok := d.Get(fmt.Sprintf("key-%05d", n-1)); !ok {
		t.Error("newest key evicted")
	}
}

// TestDiskCompactionRewritesLive overwrites most keys so old segments
// are mostly dead, then checks GC compacts (rewrites live records)
// rather than evicting them.
func TestDiskCompactionRewritesLive(t *testing.T) {
	t.Parallel()
	d, err := OpenDisk(t.TempDir(), DiskOptions{
		MaxBytes:        32 << 10,
		SegmentMaxBytes: 4 << 10,
		FlushInterval:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	val := make([]byte, 256)
	// A small working set rewritten over and over: every segment but
	// the newest is almost entirely dead, so GC compacts.
	for round := 0; round < 40; round++ {
		for i := 0; i < 16; i++ {
			d.Put(fmt.Sprintf("key-%02d", i), val)
		}
	}
	st := d.Stats()
	if st.Compactions == 0 {
		t.Errorf("no compactions: %+v", st)
	}
	if st.DiskLen != 16 {
		t.Errorf("live keys %d, want 16: %+v", st.DiskLen, st)
	}
	for i := 0; i < 16; i++ {
		if _, ok := d.Get(fmt.Sprintf("key-%02d", i)); !ok {
			t.Errorf("live key %d lost across compaction", i)
		}
	}
}

type jsonCodec struct{}

func (jsonCodec) Encode(v map[string]float64) ([]byte, error) { return json.Marshal(v) }
func (jsonCodec) Decode(b []byte) (map[string]float64, error) {
	var v map[string]float64
	err := json.Unmarshal(b, &v)
	return v, err
}

func TestTieredPromotionAndSpill(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	disk, err := OpenDisk(dir, DiskOptions{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := NewTiered[map[string]float64](2, disk, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tiered.Put(fmt.Sprintf("k%d", i), map[string]float64{"v": float64(i)})
	}
	// Close drains the write-behind queue, so everything is durable.
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}

	disk2, err := OpenDisk(dir, DiskOptions{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	tiered2, err := NewTiered[map[string]float64](2, disk2, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered2.Close()
	// Memory tier is cold after reopen: the first Get must read
	// through to disk and promote.
	v, ok := tiered2.Get("k3")
	if !ok || v["v"] != 3 {
		t.Fatalf("cold get k3 = %v, %v", v, ok)
	}
	st := tiered2.Stats()
	if st.DiskHits != 1 || st.Promotions != 1 {
		t.Errorf("after cold get: %+v", st)
	}
	// The repeat is a memory hit.
	if _, ok := tiered2.Get("k3"); !ok {
		t.Fatal("promoted get missed")
	}
	st = tiered2.Stats()
	if st.MemHits != 1 || st.DiskHits != 1 {
		t.Errorf("after warm get: %+v", st)
	}
	if tiered2.Len() != 8 {
		t.Errorf("len=%d want 8", tiered2.Len())
	}
}

// TestTieredConcurrent hammers the tiered store from many goroutines
// (run under -race in CI).
func TestTieredConcurrent(t *testing.T) {
	t.Parallel()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{MaxBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := NewTiered[map[string]float64](32, disk, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if v, ok := tiered.Get(key); ok && v["v"] < 0 {
					t.Error("negative value")
				}
				tiered.Put(key, map[string]float64{"v": float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	// Put and Close after Close are safe no-ops.
	tiered.Put("late", map[string]float64{"v": 1})
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskFlushBatching checks the background flusher syncs dirty
// data without Puts waiting on it: a put is visible immediately and
// the dirty flag clears within a few intervals.
func TestDiskFlushBatching(t *testing.T) {
	t.Parallel()
	d, err := OpenDisk(t.TempDir(), DiskOptions{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("k", []byte("v"))
	if v, ok := d.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("get right after put: %q %v", v, ok)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		d.mu.Lock()
		dirty := d.dirty
		d.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}
