package store

import (
	"container/list"
	"fmt"
	"sync"
)

// Memory is a bounded LRU store: the hot tier of Tiered, and the
// whole store when no disk backend is configured. Capacity 0 stores
// nothing (every Get misses), matching the serving layer's
// "single-flight only" cache mode.
type Memory[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, evictions uint64
}

type memEntry[V any] struct {
	key   string
	value V
}

// NewMemory builds an LRU holding up to capacity values (capacity ≥ 0).
func NewMemory[V any](capacity int) (*Memory[V], error) {
	if capacity < 0 {
		return nil, fmt.Errorf("%w: memory capacity=%d", ErrBadStore, capacity)
	}
	return &Memory[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Get returns the stored value for key, bumping its recency.
func (m *Memory[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	m.ll.MoveToFront(el)
	m.hits++
	return el.Value.(*memEntry[V]).value, true
}

// Put inserts or refreshes key, evicting the least-recently-used
// entries over capacity.
func (m *Memory[V]) Put(key string, value V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity == 0 {
		return
	}
	if el, ok := m.items[key]; ok {
		el.Value.(*memEntry[V]).value = value
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memEntry[V]{key: key, value: value})
	for m.ll.Len() > m.capacity {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.items, oldest.Value.(*memEntry[V]).key)
		m.evictions++
	}
}

// Len returns the number of stored values.
func (m *Memory[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Stats snapshots the counters.
func (m *Memory[V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		MemCapacity:  m.capacity,
		MemLen:       m.ll.Len(),
		MemHits:      m.hits,
		MemEvictions: m.evictions,
	}
}

// Close releases nothing; Memory holds no external resources.
func (m *Memory[V]) Close() error { return nil }
