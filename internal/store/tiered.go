package store

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Tiered composes a Memory front with a Disk backend: Gets read
// through (a disk hit is decoded and promoted into the memory tier so
// repeats stay hot), Puts write into memory immediately and spill to
// disk behind the caller (write-behind), so neither direction puts
// file I/O or encoding on the request hot path. The codec converts
// between the caller's values and the canonical bytes the disk tier
// persists.
type Tiered[V any] struct {
	mem   *Memory[V]
	disk  *Disk
	codec Codec[V]

	// The write-behind queue: an unbounded slice drained by the
	// spiller goroutine. Unbounded so Put NEVER encodes or touches
	// the disk inline — the serving cache calls Put under its own
	// mutex, and any synchronous fallback here would serialize the
	// whole cache behind disk I/O. The backlog's values are already
	// pinned by the memory tier, so the extra memory is bounded in
	// practice by how far the disk lags the put rate.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []spillReq[V]
	closed  bool
	drained chan struct{} // closed when the spiller has flushed and exited

	promotions, spills, spillErrors atomic.Uint64

	// opHook, when set, observes tier-movement operations ("promote",
	// "spill") with their start time and duration. Stored atomically so
	// SetOpHook is safe after the spiller goroutine is already running.
	opHook atomic.Pointer[func(op string, start time.Time, elapsed time.Duration)]
}

// SetOpHook installs fn to observe tier-movement timings: a
// synchronous read-through promotion (disk read + decode + memory
// put) and each background spill (encode + disk append). Promotions
// run on the request path; spills have no request context, which is
// why the hook carries its own start time instead of a context. A nil
// fn removes the hook.
func (t *Tiered[V]) SetOpHook(fn func(op string, start time.Time, elapsed time.Duration)) {
	if fn == nil {
		t.opHook.Store(nil)
		return
	}
	t.opHook.Store(&fn)
}

// observeOp reports one completed operation to the hook, if any.
func (t *Tiered[V]) observeOp(op string, start time.Time) {
	if fn := t.opHook.Load(); fn != nil {
		(*fn)(op, start, time.Since(start))
	}
}

type spillReq[V any] struct {
	key   string
	value V
}

// NewTiered builds the two-tier store. memCapacity sizes the hot LRU
// (0 keeps every read going to disk); disk and codec must be non-nil.
func NewTiered[V any](memCapacity int, disk *Disk, codec Codec[V]) (*Tiered[V], error) {
	if disk == nil || codec == nil {
		return nil, fmt.Errorf("%w: tiered store needs a disk tier and a codec", ErrBadStore)
	}
	mem, err := NewMemory[V](memCapacity)
	if err != nil {
		return nil, err
	}
	t := &Tiered[V]{
		mem:     mem,
		disk:    disk,
		codec:   codec,
		drained: make(chan struct{}),
	}
	t.qcond = sync.NewCond(&t.qmu)
	go t.spiller()
	return t, nil
}

// Get returns the newest value for key: memory first, then disk with
// promotion. A disk record that fails to decode is a miss.
func (t *Tiered[V]) Get(key string) (V, bool) {
	if v, ok := t.mem.Get(key); ok {
		return v, true
	}
	var start time.Time
	if t.opHook.Load() != nil {
		start = time.Now()
	}
	// Test-only fault seam: an armed "store.disk.get" fault stalls the
	// disk read (latency/stall) or degrades it to a miss (error) —
	// exactly how a slow or failing disk presents to the read path.
	if err := faultinject.Do(context.Background(), "store.disk.get"); err != nil {
		var zero V
		return zero, false
	}
	raw, ok := t.disk.Get(key)
	if !ok {
		var zero V
		return zero, false
	}
	v, err := t.codec.Decode(raw)
	if err != nil {
		var zero V
		return zero, false
	}
	t.promotions.Add(1)
	t.mem.Put(key, v)
	if !start.IsZero() {
		t.observeOp("promote", start)
	}
	return v, true
}

// Put stores into the memory tier immediately and queues the durable
// spill for the background spiller. The enqueue is O(1) with no
// encoding or I/O, so Put is safe to call on the request hot path
// (and under the serving cache's mutex).
func (t *Tiered[V]) Put(key string, value V) {
	t.mem.Put(key, value)
	t.qmu.Lock()
	if t.closed {
		t.qmu.Unlock()
		t.spill(key, value) // after Close the disk tier drops this; see Close
		return
	}
	t.queue = append(t.queue, spillReq[V]{key: key, value: value})
	t.qcond.Signal()
	t.qmu.Unlock()
}

// spiller drains the write-behind queue in batches until Close and
// the queue is empty.
func (t *Tiered[V]) spiller() {
	defer close(t.drained)
	for {
		t.qmu.Lock()
		for len(t.queue) == 0 && !t.closed {
			t.qcond.Wait()
		}
		batch := t.queue
		t.queue = nil
		done := t.closed && len(batch) == 0
		t.qmu.Unlock()
		if done {
			return
		}
		for _, req := range batch {
			t.spill(req.key, req.value)
		}
	}
}

// spill encodes and persists one value.
func (t *Tiered[V]) spill(key string, value V) {
	var start time.Time
	if t.opHook.Load() != nil {
		start = time.Now()
	}
	raw, err := t.codec.Encode(value)
	if err != nil {
		t.spillErrors.Add(1)
		return
	}
	t.disk.Put(key, raw)
	t.spills.Add(1)
	if !start.IsZero() {
		t.observeOp("spill", start)
	}
}

// Len counts distinct live keys across both tiers. Every memory entry
// is also (eventually) on disk, so the disk index dominates except
// for spills still in flight; the max of the two is the best cheap
// answer.
func (t *Tiered[V]) Len() int {
	return max(t.mem.Len(), t.disk.Len())
}

// Stats merges both tiers' counters with the movement counters.
func (t *Tiered[V]) Stats() Stats {
	s := t.mem.Stats()
	ds := t.disk.Stats()
	s.DiskLen = ds.DiskLen
	s.DiskHits = ds.DiskHits
	s.DiskBytes = ds.DiskBytes
	s.DiskSegments = ds.DiskSegments
	s.Compactions = ds.Compactions
	s.SegmentsDropped = ds.SegmentsDropped
	s.DiskEvictions = ds.DiskEvictions
	s.ReadErrors = ds.ReadErrors
	s.TruncatedRecords = ds.TruncatedRecords
	s.Promotions = t.promotions.Load()
	s.Spills = t.spills.Load()
	s.SpillErrors = t.spillErrors.Load()
	t.qmu.Lock()
	s.SpillQueueDepth = len(t.queue)
	t.qmu.Unlock()
	return s
}

// Close drains pending spills and closes the disk tier; every write
// queued before Close is persisted before Close returns. A Put racing
// Close may spill against the already-closed disk tier, which drops
// the write — the entry still lives in the memory tier, and cache
// semantics make a lost late write safe.
func (t *Tiered[V]) Close() error {
	t.qmu.Lock()
	if t.closed {
		t.qmu.Unlock()
		<-t.drained
		return nil
	}
	t.closed = true
	t.qcond.Broadcast()
	t.qmu.Unlock()
	<-t.drained
	return t.disk.Close()
}
