// Package store provides the pluggable result-store tiers behind
// internal/service's cache seam: Memory (an in-process LRU), Disk (a
// crash-safe append-only segment log), and Tiered (memory front, disk
// behind, with read-through promotion and write-behind spill). The
// serving layer keeps single-flight deduplication and request
// accounting in service.Cache and delegates storage here, so swapping
// the in-proc LRU for a persistent tier does not touch the request
// path.
package store

import "errors"

// ErrBadStore reports invalid store construction or usage.
var ErrBadStore = errors.New("store: bad configuration")

// Store is the storage seam: a key-value cache of computed results.
// Implementations are safe for concurrent use. Get returns the value
// and whether it was present; a storage-layer read failure is treated
// as a miss (and surfaced through Stats), never as a request error —
// the caller can always recompute. Put is best-effort durable:
// persistent tiers batch fsyncs and spill asynchronously, so a crash
// may lose the most recent writes but never corrupts what was already
// synced.
type Store[V any] interface {
	Get(key string) (V, bool)
	Put(key string, value V)
	Len() int
	Stats() Stats
	Close() error
}

// Codec converts values to and from the canonical byte encoding the
// disk tier persists. Decode(Encode(v)) must reproduce v exactly: the
// serving layer's restart-durability guarantee (a warm-started server
// answers with a bit-identical report) rides on it.
type Codec[V any] interface {
	Encode(V) ([]byte, error)
	Decode([]byte) (V, error)
}

// Stats is a point-in-time snapshot of one store's counters, labelled
// by tier so /statsz can attribute traffic. Single-tier stores fill
// only their own fields; Tiered aggregates its two tiers and adds the
// movement counters (promotions, spills).
type Stats struct {
	// MemCapacity and MemLen describe the memory tier (for Memory
	// itself, the whole store).
	MemCapacity int `json:"mem_capacity"`
	MemLen      int `json:"mem_len"`
	// MemHits counts Gets answered by the memory tier; MemEvictions
	// counts LRU evictions from it.
	MemHits      uint64 `json:"mem_hits"`
	MemEvictions uint64 `json:"mem_evictions"`

	// DiskLen is the number of live keys in the disk index; DiskHits
	// counts Gets answered from disk.
	DiskLen  int    `json:"disk_len,omitempty"`
	DiskHits uint64 `json:"disk_hits,omitempty"`
	// DiskBytes is the total size of all segment files on disk;
	// DiskSegments is how many there are.
	DiskBytes    int64 `json:"disk_bytes,omitempty"`
	DiskSegments int   `json:"disk_segments,omitempty"`
	// Compactions counts segment GC passes that rewrote live records;
	// SegmentsDropped counts segments deleted by GC (compacted or
	// evicted wholesale); DiskEvictions counts live keys dropped when
	// a mostly-live victim segment was evicted to meet the byte
	// budget.
	Compactions     uint64 `json:"compactions,omitempty"`
	SegmentsDropped uint64 `json:"segments_dropped,omitempty"`
	DiskEvictions   uint64 `json:"disk_evictions,omitempty"`
	// ReadErrors counts disk reads that failed verification (I/O
	// error or CRC mismatch) and were served as misses.
	ReadErrors uint64 `json:"read_errors,omitempty"`
	// TruncatedRecords counts torn or corrupt tail records dropped
	// while rebuilding the index on open.
	TruncatedRecords uint64 `json:"truncated_records,omitempty"`

	// Promotions counts disk hits copied forward into the memory
	// tier; Spills counts writes persisted to the disk tier behind a
	// memory Put; SpillErrors counts spills that failed to encode or
	// append (the memory tier still holds the value).
	Promotions  uint64 `json:"promotions,omitempty"`
	Spills      uint64 `json:"spills,omitempty"`
	SpillErrors uint64 `json:"spill_errors,omitempty"`
	// SpillQueueDepth is the live write-behind backlog: puts accepted
	// by the memory tier but not yet persisted. A depth that grows
	// without bound means the disk tier cannot keep up with the put
	// rate (the queue is deliberately unbounded to keep Put off the
	// I/O path), so it is the tiered store's saturation signal.
	SpillQueueDepth int `json:"spill_queue_depth,omitempty"`
}
