// Package protocol implements the paper's closing suggestion: a
// distributed, low-memory, low-communication implementation of the
// stochastic MWU method — "perhaps appropriate for low-power devices in
// distributed settings such as sensor networks or the internet-of-
// things" (Section 1).
//
// Every node stores exactly one integer of protocol state — its current
// option. No node ever holds a weight vector; the popularity of each
// option across the network *is* the weight vector, represented
// implicitly. Per round each node exchanges at most one request/reply
// pair with one uniformly random peer and makes one local observation of
// a candidate option's quality signal.
//
// Nodes are state machines that communicate only through Message values
// carried by a Router, which injects message loss and node crashes. A
// node whose social sample fails (lost message, crashed peer) falls back
// to uniform exploration for the round, preserving the µ-exploration
// floor that the paper's analysis relies on.
//
// The round proceeds in four phases:
//
//	A. each alive node either explores locally (probability µ) or sends
//	   a SampleRequest to a uniformly random peer;
//	B. alive recipients answer with a SampleReply carrying their current
//	   option;
//	C. each node fixes its candidate option (reply, or uniform fallback);
//	D. the environment draws this round's quality signals; each node
//	   observes its candidate's signal and adopts with probability β
//	   (good) or α (bad), otherwise keeps its current option.
package protocol

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/rng"
)

// ErrBadConfig reports an invalid protocol configuration.
var ErrBadConfig = errors.New("protocol: invalid config")

// MessageKind labels protocol messages.
type MessageKind int

// The two message kinds of the protocol.
const (
	KindSampleRequest MessageKind = iota + 1
	KindSampleReply
)

// Message is one protocol datagram.
type Message struct {
	Kind   MessageKind
	From   int
	To     int
	Option int // valid for SampleReply
}

// node is the per-device state machine. Its entire protocol state is the
// single field option — the low-memory claim under test.
type node struct {
	option int
}

// Config parameterizes a protocol simulation.
type Config struct {
	// Nodes is the network size.
	Nodes int
	// Mu is the exploration probability.
	Mu float64
	// Rule is the adoption rule shared by all nodes.
	Rule agent.Rule
	// Env generates per-round quality signals (one shared realization
	// per option per round, as in the paper).
	Env env.Environment
	// Loss is the independent per-message drop probability.
	Loss float64
	// CrashAt maps round number (1-based) to node IDs that crash
	// permanently at the start of that round.
	CrashAt map[int][]int
	// Seed drives all randomness.
	Seed uint64
}

// Stats aggregates protocol-level counters.
type Stats struct {
	RoundsRun         int
	MessagesSent      int
	MessagesDropped   int
	FallbackExplores  int
	ExplicitExplores  int
	SocialSamples     int
	CrashedNodes      int
	PerNodeStateWords int // words of protocol state per node (always 1)
}

// Simulator coordinates nodes, router, and environment.
type Simulator struct {
	mu      float64
	rule    agent.Rule
	environ env.Environment
	loss    float64
	crashAt map[int][]int
	r       *rng.RNG

	m       int
	nodes   []node
	alive   []bool
	rewards []float64
	fracs   []float64
	// Separate per-phase inboxes: requests delivered in phase A are
	// consumed in phase B, replies delivered in phase B are consumed in
	// phase C. Keeping them apart guarantees no phase can clobber the
	// other's in-flight messages.
	reqInbox   [][]Message
	replyInbox [][]Message

	t         int
	stats     Stats
	groupRew  float64
	cumReward float64
}

// New validates the config and builds a simulator with every node on a
// uniformly random option.
func New(c Config) (*Simulator, error) {
	if c.Nodes <= 0 {
		return nil, fmt.Errorf("%w: nodes=%d", ErrBadConfig, c.Nodes)
	}
	if math.IsNaN(c.Mu) || c.Mu < 0 || c.Mu > 1 {
		return nil, fmt.Errorf("%w: mu=%v", ErrBadConfig, c.Mu)
	}
	if c.Rule == nil {
		return nil, fmt.Errorf("%w: nil rule", ErrBadConfig)
	}
	if c.Env == nil {
		return nil, fmt.Errorf("%w: nil environment", ErrBadConfig)
	}
	if math.IsNaN(c.Loss) || c.Loss < 0 || c.Loss > 1 {
		return nil, fmt.Errorf("%w: loss=%v", ErrBadConfig, c.Loss)
	}
	m := c.Env.Options()
	if m <= 0 {
		return nil, fmt.Errorf("%w: %d options", ErrBadConfig, m)
	}
	for round, ids := range c.CrashAt {
		if round <= 0 {
			return nil, fmt.Errorf("%w: crash round %d", ErrBadConfig, round)
		}
		for _, id := range ids {
			if id < 0 || id >= c.Nodes {
				return nil, fmt.Errorf("%w: crash node %d", ErrBadConfig, id)
			}
		}
	}
	s := &Simulator{
		mu:         c.Mu,
		rule:       c.Rule,
		environ:    c.Env,
		loss:       c.Loss,
		crashAt:    c.CrashAt,
		r:          rng.New(c.Seed),
		m:          m,
		nodes:      make([]node, c.Nodes),
		alive:      make([]bool, c.Nodes),
		rewards:    make([]float64, m),
		fracs:      make([]float64, m),
		reqInbox:   make([][]Message, c.Nodes),
		replyInbox: make([][]Message, c.Nodes),
	}
	for i := range s.nodes {
		s.nodes[i].option = s.r.Intn(m)
		s.alive[i] = true
	}
	s.stats.PerNodeStateWords = 1
	s.refreshFracs()
	return s, nil
}

func (s *Simulator) refreshFracs() {
	for j := range s.fracs {
		s.fracs[j] = 0
	}
	aliveCount := 0
	for i, ok := range s.alive {
		if ok {
			aliveCount++
			s.fracs[s.nodes[i].option]++
		}
	}
	if aliveCount == 0 {
		return
	}
	for j := range s.fracs {
		s.fracs[j] /= float64(aliveCount)
	}
}

// T returns the number of completed rounds.
func (s *Simulator) T() int { return s.t }

// Fractions returns the per-option shares among alive nodes.
func (s *Simulator) Fractions() []float64 {
	out := make([]float64, s.m)
	copy(out, s.fracs)
	return out
}

// Stats returns a copy of the protocol counters.
func (s *Simulator) Stats() Stats { return s.stats }

// GroupReward returns the latest round's Σ_j frac^{t−1}_j · R^t_j.
func (s *Simulator) GroupReward() float64 { return s.groupRew }

// CumulativeGroupReward returns the running total.
func (s *Simulator) CumulativeGroupReward() float64 { return s.cumReward }

// AliveCount returns the number of non-crashed nodes.
func (s *Simulator) AliveCount() int {
	count := 0
	for _, ok := range s.alive {
		if ok {
			count++
		}
	}
	return count
}

// send routes one message, applying the loss model.
func (s *Simulator) send(msg Message) bool {
	s.stats.MessagesSent++
	if s.r.Bernoulli(s.loss) || !s.alive[msg.To] {
		s.stats.MessagesDropped++
		return false
	}
	switch msg.Kind {
	case KindSampleRequest:
		s.reqInbox[msg.To] = append(s.reqInbox[msg.To], msg)
	case KindSampleReply:
		s.replyInbox[msg.To] = append(s.replyInbox[msg.To], msg)
	}
	return true
}

// Step runs one protocol round.
func (s *Simulator) Step() error {
	round := s.t + 1
	for _, id := range s.crashAt[round] {
		if s.alive[id] {
			s.alive[id] = false
			s.stats.CrashedNodes++
		}
	}
	n := len(s.nodes)

	// Phase A: requests.
	pendingPeer := make([]int, n) // -1: exploring, else peer asked
	for i := range pendingPeer {
		pendingPeer[i] = -1
	}
	explore := make([]bool, n)
	for i := 0; i < n; i++ {
		if !s.alive[i] {
			continue
		}
		if s.r.Bernoulli(s.mu) {
			explore[i] = true
			s.stats.ExplicitExplores++
			continue
		}
		peer := s.r.Intn(n - 1)
		if peer >= i {
			peer++
		}
		pendingPeer[i] = peer
		s.send(Message{Kind: KindSampleRequest, From: i, To: peer})
	}

	// Phase B: replies.
	for i := 0; i < n; i++ {
		msgs := s.reqInbox[i]
		s.reqInbox[i] = s.reqInbox[i][:0]
		if !s.alive[i] {
			continue
		}
		for _, msg := range msgs {
			s.send(Message{Kind: KindSampleReply, From: i, To: msg.From, Option: s.nodes[i].option})
		}
	}

	// Phase C: candidates.
	candidate := make([]int, n)
	for i := 0; i < n; i++ {
		candidate[i] = -1
		if !s.alive[i] {
			continue
		}
		if explore[i] {
			candidate[i] = s.r.Intn(s.m)
			continue
		}
		got := -1
		for _, msg := range s.replyInbox[i] {
			if msg.From == pendingPeer[i] {
				got = msg.Option
				break
			}
		}
		s.replyInbox[i] = s.replyInbox[i][:0]
		if got >= 0 {
			candidate[i] = got
			s.stats.SocialSamples++
		} else {
			candidate[i] = s.r.Intn(s.m)
			s.stats.FallbackExplores++
		}
	}

	// Phase D: observation and adoption.
	if err := s.environ.Step(s.r, s.rewards); err != nil {
		return fmt.Errorf("protocol: environment step: %w", err)
	}
	g := 0.0
	for j, rew := range s.rewards {
		g += s.fracs[j] * rew
	}
	s.groupRew = g
	s.cumReward += g

	for i := 0; i < n; i++ {
		if !s.alive[i] || candidate[i] < 0 {
			continue
		}
		if s.rule.Adopt(s.r, s.rewards[candidate[i]]) {
			s.nodes[i].option = candidate[i]
		}
	}
	s.refreshFracs()
	s.t++
	s.stats.RoundsRun++
	return nil
}

// Run advances the protocol rounds steps and returns the time-averaged
// group reward.
func Run(s *Simulator, steps int) (float64, error) {
	if s == nil || steps <= 0 {
		return 0, fmt.Errorf("%w: run steps=%d", ErrBadConfig, steps)
	}
	before := s.cumReward
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return 0, err
		}
	}
	return (s.cumReward - before) / float64(steps), nil
}
