package protocol

import (
	"errors"
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/stats"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	rule, err := agent.NewSymmetric(0.7)
	if err != nil {
		t.Fatal(err)
	}
	environ, err := env.NewIIDBernoulli([]float64{0.9, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Nodes: 200,
		Mu:    0.02,
		Rule:  rule,
		Env:   environ,
		Seed:  1,
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero nodes", mutate: func(c *Config) { c.Nodes = 0 }},
		{name: "bad mu", mutate: func(c *Config) { c.Mu = 2 }},
		{name: "nil rule", mutate: func(c *Config) { c.Rule = nil }},
		{name: "nil env", mutate: func(c *Config) { c.Env = nil }},
		{name: "bad loss", mutate: func(c *Config) { c.Loss = -0.5 }},
		{name: "bad crash round", mutate: func(c *Config) { c.CrashAt = map[int][]int{0: {1}} }},
		{name: "bad crash node", mutate: func(c *Config) { c.CrashAt = map[int][]int{1: {999}} }},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			c := baseConfig(t)
			tt.mutate(&c)
			if _, err := New(c); !errors.Is(err, ErrBadConfig) {
				t.Errorf("want ErrBadConfig, got %v", err)
			}
		})
	}
}

func TestPerNodeStateIsOneWord(t *testing.T) {
	t.Parallel()

	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PerNodeStateWords; got != 1 {
		t.Errorf("per-node state = %d words, want 1 (the low-memory claim)", got)
	}
}

func TestConvergesToBestOption(t *testing.T) {
	t.Parallel()

	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	const window = 200
	for i := 0; i < window; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		sum += s.Fractions()[0]
	}
	if avg := sum / window; avg < 0.7 {
		t.Errorf("average best-option share %v, want > 0.7", avg)
	}
}

func TestConvergesUnderMessageLoss(t *testing.T) {
	t.Parallel()

	for _, loss := range []float64{0.01, 0.1} {
		loss := loss
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c := baseConfig(t)
			c.Loss = loss
			c.Seed = 3
			s, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
			}
			sum := 0.0
			const window = 200
			for i := 0; i < window; i++ {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
				sum += s.Fractions()[0]
			}
			// Loss raises the effective exploration rate (failed samples
			// fall back to uniform), so the concentration target is
			// looser than the loss-free case.
			if avg := sum / window; avg < 0.6 {
				t.Errorf("loss=%v: best-option share %v, want > 0.6", loss, avg)
			}
			if s.Stats().MessagesDropped == 0 {
				t.Error("no messages dropped despite positive loss")
			}
			if s.Stats().FallbackExplores == 0 {
				t.Error("no fallback explores despite message loss")
			}
		})
	}
}

func TestCrashesAreApplied(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.CrashAt = map[int][]int{
		5:  {0, 1, 2},
		10: {3},
		15: {3}, // double-crash must not double-count
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().CrashedNodes; got != 4 {
		t.Errorf("CrashedNodes = %d, want 4", got)
	}
	if got := s.AliveCount(); got != c.Nodes-4 {
		t.Errorf("AliveCount = %d, want %d", got, c.Nodes-4)
	}
}

func TestConvergesDespiteCrashes(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	// A quarter of the network crashes early.
	crash := make([]int, 0, 50)
	for i := 0; i < 50; i++ {
		crash = append(crash, i)
	}
	c.CrashAt = map[int][]int{10: crash}
	c.Seed = 9
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	const window = 200
	for i := 0; i < window; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		sum += s.Fractions()[0]
	}
	if avg := sum / window; avg < 0.65 {
		t.Errorf("best-option share after crashes %v, want > 0.65", avg)
	}
}

func TestMessageBudget(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Loss = 0
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// At most 2 messages (request+reply) per node per round.
	if limit := 2 * c.Nodes * rounds; st.MessagesSent > limit {
		t.Errorf("MessagesSent = %d exceeds budget %d", st.MessagesSent, limit)
	}
	// Social samples plus explores must cover every alive node-round.
	covered := st.SocialSamples + st.ExplicitExplores + st.FallbackExplores
	if want := c.Nodes * rounds; covered != want {
		t.Errorf("decisions = %d, want %d", covered, want)
	}
}

func TestFractionsAreProbabilityVector(t *testing.T) {
	t.Parallel()

	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if !stats.IsProbabilityVector(s.Fractions(), 1e-9) {
			t.Fatalf("round %d: fractions %v", i, s.Fractions())
		}
	}
}

// TestMatchesCentralizedDynamics compares the protocol's long-run
// behaviour with the centralized netpop-style simulation: both should
// concentrate on the best option to a similar degree.
func TestMatchesCentralizedDynamics(t *testing.T) {
	t.Parallel()

	var protoShare stats.Summary
	for rep := 0; rep < 5; rep++ {
		c := baseConfig(t)
		c.Seed = uint64(100 + rep)
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(s, 300); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < 100; i++ {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
			sum += s.Fractions()[0]
		}
		protoShare.Add(sum / 100)
	}
	// The well-mixed dynamics with these parameters concentrates ~0.85+
	// on the best option; the protocol should land in the same regime.
	if protoShare.Mean() < 0.7 {
		t.Errorf("protocol best-option share %v, centralized regime is >0.8", protoShare.Mean())
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	if _, err := Run(nil, 10); !errors.Is(err, ErrBadConfig) {
		t.Error("nil simulator accepted")
	}
	s, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("zero steps accepted")
	}
	avg, err := Run(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0 || avg > 1 {
		t.Errorf("avg reward %v", avg)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	t.Parallel()

	a, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		fa, fb := a.Fractions(), b.Fractions()
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("same-seed protocols diverged at round %d", i)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Error("stats diverged")
	}
}

func TestTotalLossDegradesToExploration(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Loss = 1
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SocialSamples != 0 {
		t.Errorf("social samples %d under total loss", st.SocialSamples)
	}
	if st.FallbackExplores == 0 {
		t.Error("no fallbacks under total loss")
	}
	// With pure exploration the population hovers near uniform.
	if f := s.Fractions(); math.Abs(f[0]-f[1]) > 0.5 {
		t.Errorf("fractions %v unexpectedly concentrated under total loss", f)
	}
}

func BenchmarkProtocolRound(b *testing.B) {
	rule, err := agent.NewSymmetric(0.7)
	if err != nil {
		b.Fatal(err)
	}
	environ, err := env.NewIIDBernoulli([]float64{0.9, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Nodes: 1000, Mu: 0.05, Rule: rule, Env: environ, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
