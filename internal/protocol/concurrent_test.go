package protocol

import (
	"errors"
	"testing"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/stats"
)

func benchDeps(b *testing.B) (agent.Linear, env.Environment) {
	b.Helper()
	rule, err := agent.NewSymmetric(0.7)
	if err != nil {
		b.Fatal(err)
	}
	environ, err := env.NewIIDBernoulli([]float64{0.9, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	return rule, environ
}

func TestConcurrentRejectsCrashSchedules(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.CrashAt = map[int][]int{1: {0}}
	if _, err := NewConcurrent(c); !errors.Is(err, ErrBadConfig) {
		t.Error("crash schedule accepted by concurrent runner")
	}
}

func TestConcurrentValidation(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Nodes = 0
	if _, err := NewConcurrent(c); !errors.Is(err, ErrBadConfig) {
		t.Error("nodes=0 accepted")
	}
}

func TestConcurrentShutdownIdempotent(t *testing.T) {
	t.Parallel()

	s, err := NewConcurrent(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	s.Shutdown() // must not panic or hang
	if err := s.Step(); !errors.Is(err, ErrBadConfig) {
		t.Error("Step after Shutdown succeeded")
	}
}

func TestConcurrentConverges(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Nodes = 100
	s, err := NewConcurrent(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	for i := 0; i < 300; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if !stats.IsProbabilityVector(s.Fractions(), 1e-9) {
			t.Fatalf("round %d: fractions %v", i, s.Fractions())
		}
	}
	sum := 0.0
	const window = 200
	for i := 0; i < window; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		sum += s.Fractions()[0]
	}
	if avg := sum / window; avg < 0.7 {
		t.Errorf("concurrent runner best-option share %v, want > 0.7", avg)
	}
	if s.T() != 500 {
		t.Errorf("T = %d, want 500", s.T())
	}
}

func TestConcurrentCountersConsistent(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Nodes = 50
	c.Loss = 0.2
	s, err := NewConcurrent(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	const rounds = 80
	for i := 0; i < rounds; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.RoundsRun != rounds {
		t.Errorf("RoundsRun = %d", st.RoundsRun)
	}
	// Every node makes exactly one decision per round.
	if covered := st.SocialSamples + st.ExplicitExplores + st.FallbackExplores; covered != c.Nodes*rounds {
		t.Errorf("decisions = %d, want %d", covered, c.Nodes*rounds)
	}
	if st.MessagesSent > 2*c.Nodes*rounds {
		t.Errorf("MessagesSent = %d exceeds 2/node/round", st.MessagesSent)
	}
	if st.MessagesDropped == 0 {
		t.Error("no drops despite 20% loss")
	}
	if st.PerNodeStateWords != 1 {
		t.Errorf("PerNodeStateWords = %d", st.PerNodeStateWords)
	}
}

// TestConcurrentMatchesSequentialInDistribution compares the long-run
// best-option share of the concurrent and sequential runners over a few
// seeds — same protocol, so the concentrations must land in the same
// regime.
func TestConcurrentMatchesSequentialInDistribution(t *testing.T) {
	t.Parallel()

	var seqShare, conShare stats.Summary
	for rep := 0; rep < 3; rep++ {
		c := baseConfig(t)
		c.Nodes = 100
		c.Seed = uint64(50 + rep)

		seq, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(seq, 300); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < 100; i++ {
			if err := seq.Step(); err != nil {
				t.Fatal(err)
			}
			sum += seq.Fractions()[0]
		}
		seqShare.Add(sum / 100)

		con, err := NewConcurrent(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := con.Step(); err != nil {
				con.Shutdown()
				t.Fatal(err)
			}
		}
		sum = 0.0
		for i := 0; i < 100; i++ {
			if err := con.Step(); err != nil {
				con.Shutdown()
				t.Fatal(err)
			}
			sum += con.Fractions()[0]
		}
		con.Shutdown()
		conShare.Add(sum / 100)
	}
	if diff := seqShare.Mean() - conShare.Mean(); diff > 0.25 || diff < -0.25 {
		t.Errorf("sequential %v vs concurrent %v shares diverged", seqShare.Mean(), conShare.Mean())
	}
}

func BenchmarkConcurrentRound(b *testing.B) {
	c := Config{Nodes: 200, Mu: 0.02, Loss: 0}
	rule, environ := benchDeps(b)
	c.Rule, c.Env, c.Seed = rule, environ, 1
	s, err := NewConcurrent(c)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
