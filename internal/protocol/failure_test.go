package protocol

import (
	"errors"
	"testing"

	"repro/internal/env"
)

// TestEnvironmentFailurePropagates verifies both runners surface an
// injected environment failure.
func TestEnvironmentFailurePropagates(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	faulty, err := env.NewFaulty(c.Env, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Env = faulty
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatalf("first round failed: %v", err)
	}
	if err := s.Step(); !errors.Is(err, env.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}

	c2 := baseConfig(t)
	faulty2, err := env.NewFaulty(c2.Env, 2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Env = faulty2
	con, err := NewConcurrent(c2)
	if err != nil {
		t.Fatal(err)
	}
	defer con.Shutdown()
	if err := con.Step(); err != nil {
		t.Fatalf("first concurrent round failed: %v", err)
	}
	if err := con.Step(); !errors.Is(err, env.ErrInjected) {
		t.Fatalf("concurrent: want ErrInjected, got %v", err)
	}
}
