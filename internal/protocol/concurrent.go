package protocol

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// ConcurrentSimulator runs the same four-phase protocol as Simulator but
// with one goroutine per node, coordinated by phase barriers. Nodes own
// their state exclusively and interact only through per-node locked
// mailboxes, demonstrating that the protocol needs no shared memory
// beyond a message channel.
//
// Each node draws from its own RNG stream, so results are independent
// of goroutine scheduling at the level of each node's local decisions;
// mailbox arrival *order* may vary between runs, which can permute
// which messages a lossy link drops. Tests therefore assert behaviour
// in distribution (convergence, counters), not bitwise equality with
// the sequential simulator.
//
// Lifecycle: NewConcurrent spawns the node goroutines; always call
// Shutdown (typically via defer) to stop and join them.
type ConcurrentSimulator struct {
	mu      float64
	rule    ruleIface
	loss    float64
	m       int
	n       int
	rewards []float64

	coordRNG *rng.RNG

	// Per-node worlds.
	nodeRNG   []*rng.RNG
	options   []int
	mailboxes []mailbox

	// Round-scoped scratch owned by each node.
	pending   []int
	exploring []bool
	candidate []int

	// phase carries per-node control channels: each node listens only
	// on its own channel, so every node executes every phase exactly
	// once per round.
	phase   []chan phaseSignal
	done    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	statsMu sync.Mutex
	stats   Stats

	t         int
	fracs     []float64
	groupRew  float64
	cumReward float64
	environ   envIface
}

// ruleIface and envIface alias the imported interfaces to keep the
// struct declaration compact.
type (
	ruleIface interface {
		Adopt(r *rng.RNG, signal float64) bool
		Alpha() float64
		Beta() float64
	}
	envIface interface {
		Options() int
		Qualities() []float64
		Step(r *rng.RNG, dst []float64) error
	}
)

// mailbox is a locked per-node message queue.
type mailbox struct {
	mu       sync.Mutex
	requests []Message
	replies  []Message
}

func (b *mailbox) push(msg Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if msg.Kind == KindSampleRequest {
		b.requests = append(b.requests, msg)
	} else {
		b.replies = append(b.replies, msg)
	}
}

func (b *mailbox) takeRequests() []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.requests
	b.requests = nil
	return out
}

func (b *mailbox) takeReplies() []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.replies
	b.replies = nil
	return out
}

// phaseSignal tells every node goroutine which phase to execute.
type phaseSignal struct {
	phase int // 1=sample requests, 2=serve replies, 3=candidates, 4=adopt
	ack   *sync.WaitGroup
}

// NewConcurrent validates the config and spawns the node goroutines.
// Crash schedules are not supported in the concurrent runner (it
// focuses on the shared-nothing execution model); use Simulator for
// fault injection.
func NewConcurrent(c Config) (*ConcurrentSimulator, error) {
	if len(c.CrashAt) != 0 {
		return nil, fmt.Errorf("%w: concurrent runner does not support crash schedules", ErrBadConfig)
	}
	// Reuse the sequential validation by constructing a throwaway
	// Simulator config check.
	if _, err := New(c); err != nil {
		return nil, err
	}
	m := c.Env.Options()
	base := rng.New(c.Seed)
	s := &ConcurrentSimulator{
		mu:        c.Mu,
		rule:      c.Rule,
		loss:      c.Loss,
		m:         m,
		n:         c.Nodes,
		rewards:   make([]float64, m),
		coordRNG:  base.Stream(0),
		nodeRNG:   make([]*rng.RNG, c.Nodes),
		options:   make([]int, c.Nodes),
		mailboxes: make([]mailbox, c.Nodes),
		pending:   make([]int, c.Nodes),
		exploring: make([]bool, c.Nodes),
		candidate: make([]int, c.Nodes),
		phase:     make([]chan phaseSignal, c.Nodes),
		done:      make(chan struct{}),
		fracs:     make([]float64, m),
		environ:   c.Env,
	}
	s.stats.PerNodeStateWords = 1
	for i := 0; i < c.Nodes; i++ {
		s.nodeRNG[i] = base.Stream(uint64(i) + 1)
		s.options[i] = s.nodeRNG[i].Intn(m)
		s.phase[i] = make(chan phaseSignal, 1)
	}
	s.refreshFracs()
	for i := 0; i < c.Nodes; i++ {
		s.wg.Add(1)
		go s.nodeLoop(i)
	}
	return s, nil
}

func (s *ConcurrentSimulator) refreshFracs() {
	for j := range s.fracs {
		s.fracs[j] = 0
	}
	inc := 1 / float64(s.n)
	for _, j := range s.options {
		s.fracs[j] += inc
	}
}

// nodeLoop is one node's goroutine: execute phases until shutdown.
func (s *ConcurrentSimulator) nodeLoop(id int) {
	defer s.wg.Done()
	r := s.nodeRNG[id]
	for {
		select {
		case <-s.done:
			return
		case sig := <-s.phase[id]:
			switch sig.phase {
			case 1:
				s.phaseSample(id, r)
			case 2:
				s.phaseServe(id, r)
			case 3:
				s.phaseCandidate(id, r)
			case 4:
				s.phaseAdopt(id, r)
			}
			sig.ack.Done()
		}
	}
}

func (s *ConcurrentSimulator) phaseSample(id int, r *rng.RNG) {
	s.pending[id] = -1
	s.exploring[id] = false
	if r.Bernoulli(s.mu) {
		s.exploring[id] = true
		s.countStat(func(st *Stats) { st.ExplicitExplores++ })
		return
	}
	peer := r.Intn(s.n - 1)
	if peer >= id {
		peer++
	}
	s.pending[id] = peer
	s.deliver(r, Message{Kind: KindSampleRequest, From: id, To: peer})
}

func (s *ConcurrentSimulator) phaseServe(id int, r *rng.RNG) {
	for _, msg := range s.mailboxes[id].takeRequests() {
		s.deliver(r, Message{
			Kind: KindSampleReply, From: id, To: msg.From, Option: s.options[id],
		})
	}
}

func (s *ConcurrentSimulator) phaseCandidate(id int, r *rng.RNG) {
	if s.exploring[id] {
		s.candidate[id] = r.Intn(s.m)
		return
	}
	got := -1
	for _, msg := range s.mailboxes[id].takeReplies() {
		if msg.From == s.pending[id] {
			got = msg.Option
			break
		}
	}
	if got >= 0 {
		s.candidate[id] = got
		s.countStat(func(st *Stats) { st.SocialSamples++ })
		return
	}
	s.candidate[id] = r.Intn(s.m)
	s.countStat(func(st *Stats) { st.FallbackExplores++ })
}

func (s *ConcurrentSimulator) phaseAdopt(id int, r *rng.RNG) {
	j := s.candidate[id]
	if s.rule.Adopt(r, s.rewards[j]) {
		s.options[id] = j
	}
}

// deliver applies the loss model and routes the message.
func (s *ConcurrentSimulator) deliver(r *rng.RNG, msg Message) {
	s.countStat(func(st *Stats) { st.MessagesSent++ })
	if r.Bernoulli(s.loss) {
		s.countStat(func(st *Stats) { st.MessagesDropped++ })
		return
	}
	s.mailboxes[msg.To].push(msg)
}

func (s *ConcurrentSimulator) countStat(apply func(*Stats)) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	apply(&s.stats)
}

// runPhase signals every node to run one phase and waits for all acks.
func (s *ConcurrentSimulator) runPhase(phase int) {
	var ack sync.WaitGroup
	ack.Add(s.n)
	sig := phaseSignal{phase: phase, ack: &ack}
	for i := 0; i < s.n; i++ {
		s.phase[i] <- sig
	}
	ack.Wait()
}

// Step runs one full round (all four phases).
func (s *ConcurrentSimulator) Step() error {
	if s.stopped {
		return fmt.Errorf("%w: simulator already shut down", ErrBadConfig)
	}
	s.runPhase(1)
	s.runPhase(2)
	if err := s.environ.Step(s.coordRNG, s.rewards); err != nil {
		return fmt.Errorf("protocol: concurrent environment step: %w", err)
	}
	g := 0.0
	for j, rew := range s.rewards {
		g += s.fracs[j] * rew
	}
	s.groupRew = g
	s.cumReward += g
	s.runPhase(3)
	s.runPhase(4)
	s.refreshFracs()
	s.t++
	s.countStat(func(st *Stats) { st.RoundsRun++ })
	return nil
}

// T returns the number of completed rounds.
func (s *ConcurrentSimulator) T() int { return s.t }

// Fractions returns the per-option population shares.
func (s *ConcurrentSimulator) Fractions() []float64 {
	out := make([]float64, s.m)
	copy(out, s.fracs)
	return out
}

// Stats returns a copy of the protocol counters.
func (s *ConcurrentSimulator) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// GroupReward returns the latest round's group reward.
func (s *ConcurrentSimulator) GroupReward() float64 { return s.groupRew }

// CumulativeGroupReward returns the running total.
func (s *ConcurrentSimulator) CumulativeGroupReward() float64 { return s.cumReward }

// Shutdown stops all node goroutines and waits for them to exit. It is
// idempotent.
func (s *ConcurrentSimulator) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.done)
	s.wg.Wait()
}
