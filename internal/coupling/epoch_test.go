package coupling

import (
	"errors"
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/regret"
)

func epochConfig(t *testing.T) Config {
	t.Helper()
	rule, err := agent.NewSymmetric(0.6)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := regret.Delta(0.6)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := regret.MaxMu(delta)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		N:         1000000,
		Mu:        mu,
		Rule:      rule,
		Qualities: []float64{0.9, 0.4, 0.4},
		Seed:      21,
	}
}

func TestEpochRunValidation(t *testing.T) {
	t.Parallel()

	c := epochConfig(t)
	if _, err := EpochRun(c, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("epochs=0 accepted")
	}
	c.Rule = nil
	if _, err := EpochRun(c, 2); !errors.Is(err, ErrBadConfig) {
		t.Error("nil rule accepted")
	}
}

func TestEpochRunShapes(t *testing.T) {
	t.Parallel()

	c := epochConfig(t)
	const epochs = 4
	results, err := EpochRun(c, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != epochs {
		t.Fatalf("%d epochs, want %d", len(results), epochs)
	}
	prevEnd := 0
	for i, ep := range results {
		if ep.Start != prevEnd+1 {
			t.Errorf("epoch %d start = %d, want %d", i, ep.Start, prevEnd+1)
		}
		if ep.End <= ep.Start {
			t.Errorf("epoch %d degenerate range [%d,%d]", i, ep.Start, ep.End)
		}
		prevEnd = ep.End
		if math.IsNaN(ep.MaxDeviation) || ep.MaxDeviation < 0 {
			t.Errorf("epoch %d deviation %v", i, ep.MaxDeviation)
		}
	}
}

// TestEpochRegretsWithinBound: every epoch's infinite-process regret
// (Theorem 4.6 with a floored start) must be within 3*delta, and the
// coupled finite regret must stay close to it at N = 10^6.
func TestEpochRegretsWithinBound(t *testing.T) {
	t.Parallel()

	c := epochConfig(t)
	delta, err := regret.Delta(c.Rule.Beta())
	if err != nil {
		t.Fatal(err)
	}
	bound, err := regret.InfiniteBound(delta)
	if err != nil {
		t.Fatal(err)
	}
	results, err := EpochRun(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range results {
		if ep.InfiniteRegret > bound {
			t.Errorf("epoch %d: infinite regret %v above 3*delta=%v", i, ep.InfiniteRegret, bound)
		}
		if ep.FiniteRegret > bound+0.5 {
			t.Errorf("epoch %d: finite regret %v far above the coupled infinite bound", i, ep.FiniteRegret)
		}
		if math.Abs(ep.FiniteRegret-ep.InfiniteRegret) > 0.2 {
			t.Errorf("epoch %d: finite %v and infinite %v regrets diverged", i, ep.FiniteRegret, ep.InfiniteRegret)
		}
	}
}

// TestEpochDeviationSmallAtLargeN: within each epoch the coupled
// trajectories stay multiplicatively close at N = 10^6 (the regime the
// paper's stitching argument needs).
func TestEpochDeviationSmallAtLargeN(t *testing.T) {
	t.Parallel()

	c := epochConfig(t)
	results, err := EpochRun(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range results {
		if ep.MaxDeviation > 0.5 {
			t.Errorf("epoch %d: max deviation %v too large for N=10^6", i, ep.MaxDeviation)
		}
	}
}
