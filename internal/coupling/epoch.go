package coupling

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/infinite"
	"repro/internal/population"
	"repro/internal/regret"
	"repro/internal/stats"
)

// EpochResult summarizes one epoch of the Section 4.3.2 construction.
type EpochResult struct {
	// Start and End are the epoch's step range (1-based, inclusive).
	Start, End int
	// FiniteRegret is η₁ minus the finite process's average group
	// reward over the epoch.
	FiniteRegret float64
	// InfiniteRegret is the same for the epoch's coupled infinite
	// process (restarted at the finite state at the epoch boundary).
	InfiniteRegret float64
	// MaxDeviation is the largest max_j |P_j/Q_j − 1| seen within the
	// epoch.
	MaxDeviation float64
}

// EpochRun implements the large-T argument of Section 4.3.2 as an
// executable construction: time is cut into epochs of length
// ln(1/ζ)/δ² with ζ = µ(1−β)/4m; at each epoch boundary a *fresh*
// infinite-population process is started from the finite population's
// current popularity, and both processes then consume the same realized
// rewards. The per-epoch regret of the infinite process is covered by
// Theorem 4.6 (nonuniform start), and the coupling keeps the finite
// process close within the epoch — which is exactly how the paper
// stitches Theorem 4.4 together.
//
// The finite popularity can have zero coordinates (a floor violation
// the paper tolerates with probability O(m/N¹⁰)); the restart therefore
// mixes the popularity with the ζ floor before seeding the infinite
// process, matching the proof's conditioning.
func EpochRun(c Config, epochs int) ([]EpochResult, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("%w: epochs=%d", ErrBadConfig, epochs)
	}
	if c.Rule == nil {
		return nil, fmt.Errorf("%w: nil rule", ErrBadConfig)
	}
	m := len(c.Qualities)
	delta, err := regret.Delta(c.Rule.Beta())
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	epochLen, err := regret.EpochLength(m, c.Mu, c.Rule.Beta(), delta)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	zeta, err := regret.PopularityFloor(m, c.Mu, c.Rule.Beta())
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}

	environ, err := env.NewIIDBernoulli(c.Qualities)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	fin, err := population.NewAggregateEngine(population.Config{
		N: c.N, Mu: c.Mu, Rule: c.Rule, Env: environ, Seed: c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("coupling: finite engine: %w", err)
	}
	eta1 := 0.0
	for _, q := range c.Qualities {
		if q > eta1 {
			eta1 = q
		}
	}

	results := make([]EpochResult, 0, epochs)
	step := 0
	for ep := 0; ep < epochs; ep++ {
		// Restart the infinite process at the (floored) finite state.
		start := fin.Popularity()
		flooredMass := 0.0
		for j := range start {
			if start[j] < zeta {
				start[j] = zeta
			}
			flooredMass += start[j]
		}
		for j := range start {
			start[j] /= flooredMass
		}
		placeholder, err := env.NewIIDBernoulli(c.Qualities)
		if err != nil {
			return nil, fmt.Errorf("coupling: %w", err)
		}
		inf, err := infinite.New(infinite.Config{
			Mu: c.Mu, Rule: c.Rule, Env: placeholder,
			InitialP: start, Seed: c.Seed + uint64(ep) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("coupling: epoch %d infinite process: %w", ep, err)
		}

		res := EpochResult{Start: step + 1, End: step + epochLen}
		finBefore := fin.CumulativeGroupReward()
		for i := 0; i < epochLen; i++ {
			if err := fin.Step(); err != nil {
				return nil, fmt.Errorf("coupling: epoch %d finite step: %w", ep, err)
			}
			if err := inf.StepWithRewards(fin.LastRewards()); err != nil {
				return nil, fmt.Errorf("coupling: epoch %d infinite step: %w", ep, err)
			}
			dev, err := stats.MaxRatioDeviation(inf.Distribution(), fin.Popularity())
			if err != nil {
				return nil, fmt.Errorf("coupling: epoch %d deviation: %w", ep, err)
			}
			if dev > res.MaxDeviation {
				res.MaxDeviation = dev
			}
		}
		step += epochLen
		res.FiniteRegret = eta1 - (fin.CumulativeGroupReward()-finBefore)/float64(epochLen)
		res.InfiniteRegret = eta1 - inf.CumulativeGroupReward()/float64(epochLen)
		results = append(results, res)
	}
	return results, nil
}
