package coupling

import (
	"errors"
	"math"
	"testing"

	"repro/internal/agent"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	rule, err := agent.NewSymmetric(0.7)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		N:         100000,
		Mu:        0.05,
		Rule:      rule,
		Qualities: []float64{0.9, 0.4},
		Steps:     10,
		Seed:      1,
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Steps = 0
	if _, err := Run(c); !errors.Is(err, ErrBadConfig) {
		t.Error("zero steps accepted")
	}
	c = baseConfig(t)
	c.Rule = nil
	if _, err := Run(c); !errors.Is(err, ErrBadConfig) {
		t.Error("nil rule accepted")
	}
	c = baseConfig(t)
	c.Qualities = nil
	if _, err := Run(c); err == nil {
		t.Error("empty qualities accepted")
	}
	c = baseConfig(t)
	c.N = 0
	if _, err := Run(c); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestRunShapes(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deviation) != c.Steps || len(res.Bound) != c.Steps {
		t.Fatalf("lengths %d/%d, want %d", len(res.Deviation), len(res.Bound), c.Steps)
	}
	if len(res.FinitePopularity) != c.Steps || len(res.InfiniteDistribution) != c.Steps {
		t.Fatal("trajectory lengths wrong")
	}
	if res.DeltaDoublePrime <= 0 {
		t.Errorf("delta'' = %v", res.DeltaDoublePrime)
	}
	for t2, b := range res.Bound {
		if want := math.Pow(5, float64(t2+1)) * res.DeltaDoublePrime; math.Abs(b-want) > 1e-9*want {
			t.Errorf("bound[%d] = %v, want %v", t2, b, want)
		}
	}
}

// TestTrajectoriesStayClose is the Lemma 4.5 reproduction at test
// scale: with a large population the early-step deviation is small and
// below the (loose) analytic bound whenever that bound is meaningful.
func TestTrajectoriesStayClose(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.N = 1000000
	c.Steps = 8
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// Early deviations should be far below 1 for N = 10^6.
	for step := 0; step < 4; step++ {
		if res.Deviation[step] > 0.1 {
			t.Errorf("step %d deviation %v too large for N=10^6", step+1, res.Deviation[step])
		}
	}
	// And below the lemma's bound while the bound is < 1.
	for step := range res.Deviation {
		if res.Bound[step] < 1 && res.Deviation[step] > res.Bound[step] {
			t.Errorf("step %d: deviation %v exceeds bound %v", step+1, res.Deviation[step], res.Bound[step])
		}
	}
}

// TestDeviationShrinksWithN verifies the 1/sqrt(N) scaling: the mean
// early-step deviation at N=10^6 is smaller than at N=10^3.
func TestDeviationShrinksWithN(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Steps = 3
	const reps = 20

	c.N = 1000
	small, err := MeanDeviationAt(c, 3, reps)
	if err != nil {
		t.Fatal(err)
	}
	c.N = 1000000
	large, err := MeanDeviationAt(c, 3, reps)
	if err != nil {
		t.Fatal(err)
	}
	if large.Mean() >= small.Mean() {
		t.Errorf("deviation did not shrink with N: N=10^3 -> %v, N=10^6 -> %v",
			small.Mean(), large.Mean())
	}
}

func TestAgentEngineCouplingAgrees(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.N = 2000
	c.UseAgentEngine = true
	c.Steps = 5
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for step, dev := range res.Deviation {
		if math.IsInf(dev, 0) || math.IsNaN(dev) {
			t.Errorf("step %d: degenerate deviation %v", step+1, dev)
		}
	}
}

func TestMeanDeviationValidation(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	if _, err := MeanDeviationAt(c, 0, 5); !errors.Is(err, ErrBadConfig) {
		t.Error("step=0 accepted")
	}
	if _, err := MeanDeviationAt(c, c.Steps+1, 5); !errors.Is(err, ErrBadConfig) {
		t.Error("step beyond horizon accepted")
	}
	if _, err := MeanDeviationAt(c, 1, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("reps=0 accepted")
	}
}

func TestCouplingDeterministic(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Steps = 6
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Deviation {
		if a.Deviation[i] != b.Deviation[i] {
			t.Fatalf("replays diverged at step %d", i+1)
		}
	}
}
