// Package coupling implements the finite/infinite coupling of the
// paper's Lemma 4.5: the finite-population dynamics and the
// infinite-population stochastic MWU process are driven by the *same*
// realized reward sequence, and the trajectories are compared through
// the multiplicative closeness measure max_j |P^t_j / Q^t_j − 1|.
//
// Because the infinite process is deterministic given the rewards, the
// coupling is exact: each finite-population step draws rewards once and
// feeds the identical vector to the infinite process.
package coupling

import (
	"errors"
	"fmt"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/infinite"
	"repro/internal/population"
	"repro/internal/regret"
	"repro/internal/stats"
)

// ErrBadConfig reports an invalid coupling configuration.
var ErrBadConfig = errors.New("coupling: invalid config")

// Config parameterizes a coupled run.
type Config struct {
	// N is the finite population size.
	N int
	// Mu is the exploration probability.
	Mu float64
	// Rule is the shared adoption rule.
	Rule agent.Rule
	// Qualities are the option success probabilities η.
	Qualities []float64
	// Steps is the horizon T.
	Steps int
	// Seed drives all randomness.
	Seed uint64
	// UseAgentEngine selects the per-agent finite engine instead of the
	// aggregate one.
	UseAgentEngine bool
}

// Result captures one coupled trajectory.
type Result struct {
	// Deviation[t] is max_j |P^{t+1}_j/Q^{t+1}_j − 1| after step t+1.
	Deviation []float64
	// Bound[t] is Lemma 4.5's bound 5^{t+1}·δ′′ (saturated at +Inf for
	// large t; it grows geometrically and is only meaningful early).
	Bound []float64
	// FinitePopularity[t] is Q^{t+1}.
	FinitePopularity [][]float64
	// InfiniteDistribution[t] is P^{t+1}.
	InfiniteDistribution [][]float64
	// DeltaDoublePrime is the per-step closeness scale δ′′ of the lemma.
	DeltaDoublePrime float64
}

// Run executes a coupled finite/infinite trajectory.
func Run(c Config) (*Result, error) {
	if c.Steps <= 0 {
		return nil, fmt.Errorf("%w: steps=%d", ErrBadConfig, c.Steps)
	}
	if c.Rule == nil {
		return nil, fmt.Errorf("%w: nil rule", ErrBadConfig)
	}
	environ, err := env.NewIIDBernoulli(c.Qualities)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}

	popCfg := population.Config{
		N:    c.N,
		Mu:   c.Mu,
		Rule: c.Rule,
		Env:  environ,
		Seed: c.Seed,
	}
	var fin population.Engine
	if c.UseAgentEngine {
		fin, err = population.NewAgentEngine(popCfg)
	} else {
		fin, err = population.NewAggregateEngine(popCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("coupling: finite engine: %w", err)
	}

	// The infinite process consumes the finite run's realized rewards,
	// so its own environment is never stepped; a placeholder carrying
	// the same option count is enough.
	placeholder, err := env.NewIIDBernoulli(c.Qualities)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	inf, err := infinite.New(infinite.Config{
		Mu:   c.Mu,
		Rule: c.Rule,
		Env:  placeholder,
		Seed: c.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("coupling: infinite process: %w", err)
	}

	dpp, err := regret.CouplingDeltaDoublePrime(len(c.Qualities), c.N, c.Rule.Beta(), c.Mu)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}

	res := &Result{
		Deviation:            make([]float64, 0, c.Steps),
		Bound:                make([]float64, 0, c.Steps),
		FinitePopularity:     make([][]float64, 0, c.Steps),
		InfiniteDistribution: make([][]float64, 0, c.Steps),
		DeltaDoublePrime:     dpp,
	}
	for t := 1; t <= c.Steps; t++ {
		if err := fin.Step(); err != nil {
			return nil, fmt.Errorf("coupling: finite step %d: %w", t, err)
		}
		if err := inf.StepWithRewards(fin.LastRewards()); err != nil {
			return nil, fmt.Errorf("coupling: infinite step %d: %w", t, err)
		}
		q := fin.Popularity()
		p := inf.Distribution()
		dev, err := stats.MaxRatioDeviation(p, q)
		if err != nil {
			return nil, fmt.Errorf("coupling: deviation at step %d: %w", t, err)
		}
		bound, err := regret.CouplingBound(t, dpp)
		if err != nil {
			return nil, fmt.Errorf("coupling: bound at step %d: %w", t, err)
		}
		res.Deviation = append(res.Deviation, dev)
		res.Bound = append(res.Bound, bound)
		res.FinitePopularity = append(res.FinitePopularity, q)
		res.InfiniteDistribution = append(res.InfiniteDistribution, p)
	}
	return res, nil
}

// MeanDeviationAt averages the step-t deviation (1-based) over reps
// independent coupled runs, deriving per-replication seeds from
// c.Seed.
func MeanDeviationAt(c Config, step, reps int) (stats.Summary, error) {
	var out stats.Summary
	if step <= 0 || step > c.Steps || reps <= 0 {
		return out, fmt.Errorf("%w: step=%d reps=%d", ErrBadConfig, step, reps)
	}
	for rep := 0; rep < reps; rep++ {
		cc := c
		cc.Seed = c.Seed + uint64(rep)*0x9e3779b9
		res, err := Run(cc)
		if err != nil {
			return out, err
		}
		out.Add(res.Deviation[step-1])
	}
	return out, nil
}
