package markov

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func baseConfig() Config {
	return Config{N: 20, Eta1: 0.8, Eta2: 0.4, Mu: 0, Alpha: 0.3, Beta: 0.7}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	bad := []Config{
		{N: 0, Eta1: 0.5, Eta2: 0.5, Beta: 0.5},
		{N: 10000, Eta1: 0.5, Eta2: 0.5, Beta: 0.5},
		{N: 10, Eta1: 1.5, Eta2: 0.5, Beta: 0.5},
		{N: 10, Eta1: 0.5, Eta2: 0.5, Mu: -0.1, Beta: 0.5},
		{N: 10, Eta1: 0.5, Eta2: 0.5, Alpha: 0.8, Beta: 0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRowsAreStochastic(t *testing.T) {
	t.Parallel()

	for _, mu := range []float64{0, 0.1, 1} {
		cfg := baseConfig()
		cfg.Mu = mu
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e := c.RowSumError(); e > 1e-9 {
			t.Errorf("mu=%v: row-sum error %v", mu, e)
		}
	}
}

func TestAbsorbingIffMuZero(t *testing.T) {
	t.Parallel()

	c0, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !c0.IsAbsorbing() {
		t.Error("mu=0 chain not absorbing")
	}
	cfg := baseConfig()
	cfg.Mu = 0.05
	cMu, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cMu.IsAbsorbing() {
		t.Error("mu>0 chain absorbing")
	}
	if _, err := cMu.FixationProbabilities(); !errors.Is(err, ErrNotAbsorbing) {
		t.Error("fixation computed for non-absorbing chain")
	}
	if _, err := cMu.ExpectedAbsorptionTimes(); !errors.Is(err, ErrNotAbsorbing) {
		t.Error("absorption time computed for non-absorbing chain")
	}
}

func TestFixationProbabilitiesShape(t *testing.T) {
	t.Parallel()

	c, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.FixationProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0 || h[c.N()] != 1 {
		t.Fatalf("boundary values wrong: h[0]=%v h[N]=%v", h[0], h[c.N()])
	}
	for k := 1; k < c.N(); k++ {
		if h[k] <= h[k-1] {
			t.Fatalf("fixation probability not strictly increasing at k=%d: %v <= %v", k, h[k], h[k-1])
		}
		if h[k] <= 0 || h[k] >= 1 {
			t.Fatalf("interior fixation probability out of (0,1): h[%d]=%v", k, h[k])
		}
	}
	// With eta1 > eta2 the good option should be favoured from the
	// 50/50 start.
	if h[c.N()/2] < 0.5 {
		t.Errorf("h[N/2] = %v, want > 0.5 with a quality gap", h[c.N()/2])
	}
}

func TestNeutralChainFixationIsLinear(t *testing.T) {
	t.Parallel()

	// With eta1 = eta2 and alpha = beta the chain is an exchangeable
	// (martingale) drift-free process, so h(k) = k/N — the classical
	// neutral Wright-Fisher result.
	c, err := New(Config{N: 12, Eta1: 0.5, Eta2: 0.5, Mu: 0, Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.FixationProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 12; k++ {
		if want := float64(k) / 12; math.Abs(h[k]-want) > 1e-8 {
			t.Errorf("neutral h[%d] = %v, want %v", k, h[k], want)
		}
	}
}

func TestWrongFixationPositiveAtMuZero(t *testing.T) {
	t.Parallel()

	c, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := c.WrongFixationProbability()
	if err != nil {
		t.Fatal(err)
	}
	if wrong <= 0 || wrong >= 0.5 {
		t.Errorf("wrong-fixation probability %v, want in (0, 0.5) for a clear gap", wrong)
	}
}

// TestFixationMatchesSimulation cross-checks the linear-system solution
// against direct simulation of the same chain.
func TestFixationMatchesSimulation(t *testing.T) {
	t.Parallel()

	cfg := Config{N: 10, Eta1: 0.7, Eta2: 0.5, Mu: 0, Alpha: 0.4, Beta: 0.6}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.FixationProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	const reps = 4000
	start := 5
	hits := 0
	for rep := 0; rep < reps; rep++ {
		end, err := c.Simulate(r, start, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if end != 0 && end != cfg.N {
			t.Fatal("simulation did not absorb")
		}
		if end == cfg.N {
			hits++
		}
	}
	got := float64(hits) / reps
	se := math.Sqrt(h[start] * (1 - h[start]) / reps)
	if math.Abs(got-h[start]) > 5*se+1e-9 {
		t.Errorf("simulated fixation %v vs exact %v (se %v)", got, h[start], se)
	}
}

func TestExpectedAbsorptionTimes(t *testing.T) {
	t.Parallel()

	c, err := New(Config{N: 10, Eta1: 0.7, Eta2: 0.5, Mu: 0, Alpha: 0.4, Beta: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	times, err := c.ExpectedAbsorptionTimes()
	if err != nil {
		t.Fatal(err)
	}
	if times[0] != 0 || times[10] != 0 {
		t.Error("absorbing states should have zero expected time")
	}
	for k := 1; k < 10; k++ {
		if times[k] <= 0 {
			t.Errorf("interior time t[%d] = %v", k, times[k])
		}
	}
	// Validate one interior value by simulation.
	r := rng.New(5)
	var s stats.Summary
	for rep := 0; rep < 3000; rep++ {
		k := 5
		steps := 0
		for k != 0 && k != 10 {
			next, err := c.Simulate(r, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			k = next
			steps++
			if steps > 1000000 {
				t.Fatal("runaway simulation")
			}
		}
		s.Add(float64(steps))
	}
	if math.Abs(s.Mean()-times[5]) > 6*s.StdErr()+0.05 {
		t.Errorf("simulated absorption time %v vs exact %v (se %v)", s.Mean(), times[5], s.StdErr())
	}
}

func TestStationaryDistribution(t *testing.T) {
	t.Parallel()

	cfg := Config{N: 30, Eta1: 0.9, Eta2: 0.3, Mu: 0.05, Alpha: 0.3, Beta: 0.7}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StationaryDistribution(0, 1e-9); !errors.Is(err, ErrBadConfig) {
		t.Error("maxIters=0 accepted")
	}
	pi, err := c.StationaryDistribution(20000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IsProbabilityVector(pi, 1e-9) {
		t.Fatalf("stationary distribution invalid: sums to %v", sum(pi))
	}
	// Invariance: pi T ~= pi.
	next, err := c.StepDistribution(pi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(next[i]-pi[i]) > 1e-8 {
			t.Fatalf("stationary distribution not invariant at %d: %v vs %v", i, next[i], pi[i])
		}
	}
	// With a strong gap, most stationary mass should sit near k=N.
	massTop := 0.0
	for k := 2 * cfg.N / 3; k <= cfg.N; k++ {
		massTop += pi[k]
	}
	if massTop < 0.8 {
		t.Errorf("stationary mass in top third = %v, want > 0.8", massTop)
	}
}

func TestSimulateValidation(t *testing.T) {
	t.Parallel()

	c, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(nil, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("nil rng accepted")
	}
	if _, err := c.Simulate(rng.New(1), -1, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("negative state accepted")
	}
	if _, err := c.Simulate(rng.New(1), c.N()+1, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("state beyond N accepted")
	}
}

func TestBinomialPMFProperties(t *testing.T) {
	t.Parallel()

	for _, tc := range []struct {
		n int
		p float64
	}{
		{n: 0, p: 0.5}, {n: 1, p: 0.3}, {n: 50, p: 0}, {n: 50, p: 1},
		{n: 100, p: 0.25}, {n: 400, p: 0.9},
	} {
		dst := make([]float64, tc.n+1)
		binomialPMF(dst, tc.n, tc.p)
		total := 0.0
		mean := 0.0
		for k, v := range dst {
			if v < 0 {
				t.Fatalf("negative PMF value at n=%d p=%v k=%d", tc.n, tc.p, k)
			}
			total += v
			mean += float64(k) * v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("PMF(n=%d, p=%v) sums to %v", tc.n, tc.p, total)
		}
		if math.Abs(mean-float64(tc.n)*tc.p) > 1e-7*float64(tc.n+1) {
			t.Errorf("PMF mean %v, want %v", mean, float64(tc.n)*tc.p)
		}
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func BenchmarkBuildChainN100(b *testing.B) {
	cfg := Config{N: 100, Eta1: 0.8, Eta2: 0.4, Mu: 0.05, Alpha: 0.3, Beta: 0.7}
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixationN100(b *testing.B) {
	cfg := Config{N: 100, Eta1: 0.8, Eta2: 0.4, Mu: 0, Alpha: 0.3, Beta: 0.7}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FixationProbabilities(); err != nil {
			b.Fatal(err)
		}
	}
}
