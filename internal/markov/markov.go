// Package markov provides an *exact* finite-state analysis of the
// two-option social-learning dynamics on small populations, complementing
// the Monte-Carlo engines. It quantifies precisely the phenomenon the
// paper's µ > 0 assumption exists to prevent: with µ = 0 the chain has
// absorbing states at "everyone on option 1" and "everyone on option 2",
// and the probability of fixating on the *bad* option is a constant
// bounded away from zero.
//
// The model is the lazy two-option dynamics (each individual always
// holds an option; sitting out means keeping it — the same semantics as
// internal/netpop on the complete graph). The chain state is
// k ∈ {0..N}, the number of individuals holding option 1. Conditioned
// on the step's reward realization (R₁, R₂):
//
//	each 1-holder switches to 2 w.p.  c₂·f(R₂),
//	each 2-holder switches to 1 w.p.  c₁·f(R₁),
//
// where c_j = µ/2 + (1−µ)·(count_j)/N is the probability of considering
// option j and f(R) = β·R + α·(1−R) is the adoption probability. The
// next state is k − Bin(k, c₂f(R₂)) + Bin(N−k, c₁f(R₁)); its exact
// distribution is the convolution of two binomials, averaged over the
// four reward outcomes.
//
// Fixation probabilities and expected absorption times come from solving
// the standard first-step linear systems with internal/linalg; the
// stationary distribution (µ > 0) from power iteration.
package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/rng"
)

var (
	// ErrBadConfig reports invalid chain parameters.
	ErrBadConfig = errors.New("markov: invalid config")
	// ErrNotAbsorbing reports absorption queries on a chain with µ > 0
	// (no absorbing states).
	ErrNotAbsorbing = errors.New("markov: chain has no absorbing states (mu > 0)")
)

// Config parameterizes the exact two-option chain.
type Config struct {
	// N is the population size (kept small: the transition matrix is
	// (N+1)², and building it costs O(N³)).
	N int
	// Eta1 and Eta2 are the option qualities.
	Eta1, Eta2 float64
	// Mu is the exploration probability.
	Mu float64
	// Alpha and Beta are the adoption probabilities on bad and good
	// signals respectively (α ≤ β).
	Alpha, Beta float64
}

func (c Config) validate() error {
	if c.N < 1 || c.N > 400 {
		return fmt.Errorf("%w: N=%d (supported range 1..400)", ErrBadConfig, c.N)
	}
	for _, p := range []float64{c.Eta1, c.Eta2, c.Mu, c.Alpha, c.Beta} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("%w: parameter %v out of [0,1]", ErrBadConfig, p)
		}
	}
	if c.Alpha > c.Beta {
		return fmt.Errorf("%w: alpha=%v > beta=%v", ErrBadConfig, c.Alpha, c.Beta)
	}
	return nil
}

// Chain is the exact two-option Markov chain. Create with New.
type Chain struct {
	cfg Config
	tm  *linalg.Matrix // (N+1)x(N+1) row-stochastic transition matrix
}

// New builds the exact transition matrix for the configuration.
func New(cfg Config) (*Chain, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	tm, err := linalg.NewMatrix(n+1, n+1)
	if err != nil {
		return nil, err
	}

	// Reward outcomes and their probabilities.
	type outcome struct {
		p      float64
		f1, f2 float64 // adoption probabilities for options 1 and 2
	}
	f := func(r int) float64 {
		if r == 1 {
			return cfg.Beta
		}
		return cfg.Alpha
	}
	outcomes := make([]outcome, 0, 4)
	for r1 := 0; r1 <= 1; r1++ {
		for r2 := 0; r2 <= 1; r2++ {
			p1 := cfg.Eta1
			if r1 == 0 {
				p1 = 1 - cfg.Eta1
			}
			p2 := cfg.Eta2
			if r2 == 0 {
				p2 = 1 - cfg.Eta2
			}
			if p1*p2 == 0 {
				continue
			}
			outcomes = append(outcomes, outcome{p: p1 * p2, f1: f(r1), f2: f(r2)})
		}
	}

	pmfLoss := make([]float64, n+1) // Bin(k, pSwitchOut)
	pmfGain := make([]float64, n+1) // Bin(N-k, pSwitchIn)
	for k := 0; k <= n; k++ {
		c1 := cfg.Mu/2 + (1-cfg.Mu)*float64(k)/float64(n)
		c2 := cfg.Mu/2 + (1-cfg.Mu)*float64(n-k)/float64(n)
		for _, o := range outcomes {
			pOut := c2 * o.f2 // 1-holder considers 2 and adopts
			pIn := c1 * o.f1  // 2-holder considers 1 and adopts
			binomialPMF(pmfLoss[:k+1], k, pOut)
			binomialPMF(pmfGain[:n-k+1], n-k, pIn)
			// k' = k - loss + gain.
			for loss := 0; loss <= k; loss++ {
				pl := pmfLoss[loss]
				if pl == 0 {
					continue
				}
				base := k - loss
				w := o.p * pl
				for gain := 0; gain <= n-k; gain++ {
					pg := pmfGain[gain]
					if pg == 0 {
						continue
					}
					tm.Add(k, base+gain, w*pg)
				}
			}
		}
	}
	return &Chain{cfg: cfg, tm: tm}, nil
}

// binomialPMF fills dst (length n+1) with the Binomial(n, p) PMF,
// computed by the stable multiplicative recurrence.
func binomialPMF(dst []float64, n int, p float64) {
	if p <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		dst[0] = 1
		return
	}
	if p >= 1 {
		for i := range dst {
			dst[i] = 0
		}
		dst[n] = 1
		return
	}
	// Work in logs from the mode outward would be fancier; the simple
	// recurrence P(k+1) = P(k)·(n−k)/(k+1)·p/(1−p) is stable enough for
	// the N ≤ 400 this package supports, anchored at log P(0).
	logQ := math.Log1p(-p)
	logit := math.Log(p) - logQ
	logPk := float64(n) * logQ
	for k := 0; k <= n; k++ {
		dst[k] = math.Exp(logPk)
		if k < n {
			logPk += math.Log(float64(n-k)) - math.Log(float64(k+1)) + logit
		}
	}
}

// N returns the population size.
func (c *Chain) N() int { return c.cfg.N }

// TransitionProbability returns P[k → k'].
func (c *Chain) TransitionProbability(k, kPrime int) float64 {
	return c.tm.At(k, kPrime)
}

// RowSumError returns the worst |row sum − 1| across states — a
// correctness diagnostic for the exact construction.
func (c *Chain) RowSumError() float64 {
	worst := 0.0
	for k := 0; k <= c.cfg.N; k++ {
		sum := 0.0
		for j := 0; j <= c.cfg.N; j++ {
			sum += c.tm.At(k, j)
		}
		if d := math.Abs(sum - 1); d > worst {
			worst = d
		}
	}
	return worst
}

// IsAbsorbing reports whether states 0 and N are absorbing (µ = 0 and
// α or the reward structure cannot re-seed an extinct option).
func (c *Chain) IsAbsorbing() bool {
	return c.tm.At(0, 0) > 1-1e-12 && c.tm.At(c.cfg.N, c.cfg.N) > 1-1e-12
}

// StepDistribution advances a state distribution one step: πᵀT.
func (c *Chain) StepDistribution(pi []float64) ([]float64, error) {
	return c.tm.VecMul(pi)
}

// FixationProbabilities returns, for every start state k, the
// probability of absorbing at k = N (all on option 1). It requires an
// absorbing chain (µ = 0).
func (c *Chain) FixationProbabilities() ([]float64, error) {
	if !c.IsAbsorbing() {
		return nil, ErrNotAbsorbing
	}
	n := c.cfg.N
	if n == 1 {
		return []float64{0, 1}, nil
	}
	// Interior states 1..N-1: h(k) = Σ_j T[k][j] h(j), h(0)=0, h(N)=1.
	interior := n - 1
	a, err := linalg.NewMatrix(interior, interior)
	if err != nil {
		return nil, err
	}
	b := make([]float64, interior)
	for k := 1; k <= n-1; k++ {
		row := k - 1
		for j := 1; j <= n-1; j++ {
			v := -c.tm.At(k, j)
			if j == k {
				v++
			}
			a.Set(row, j-1, v)
		}
		b[row] = c.tm.At(k, n)
	}
	h, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: fixation solve: %w", err)
	}
	out := make([]float64, n+1)
	copy(out[1:], h)
	out[n] = 1
	return out, nil
}

// ExpectedAbsorptionTimes returns, for every start state, the expected
// number of steps until absorption (0 at the absorbing states).
func (c *Chain) ExpectedAbsorptionTimes() ([]float64, error) {
	if !c.IsAbsorbing() {
		return nil, ErrNotAbsorbing
	}
	n := c.cfg.N
	if n == 1 {
		return []float64{0, 0}, nil
	}
	interior := n - 1
	a, err := linalg.NewMatrix(interior, interior)
	if err != nil {
		return nil, err
	}
	b := make([]float64, interior)
	for k := 1; k <= n-1; k++ {
		row := k - 1
		for j := 1; j <= n-1; j++ {
			v := -c.tm.At(k, j)
			if j == k {
				v++
			}
			a.Set(row, j-1, v)
		}
		b[row] = 1
	}
	t, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: absorption-time solve: %w", err)
	}
	out := make([]float64, n+1)
	copy(out[1:], t)
	return out, nil
}

// StationaryDistribution estimates the stationary distribution by power
// iteration from the uniform distribution, stopping when the L1 change
// drops below tol or after maxIters steps. For µ > 0 the chain is
// irreducible and aperiodic, so the iteration converges.
func (c *Chain) StationaryDistribution(maxIters int, tol float64) ([]float64, error) {
	if maxIters <= 0 || math.IsNaN(tol) || tol <= 0 {
		return nil, fmt.Errorf("%w: maxIters=%d tol=%v", ErrBadConfig, maxIters, tol)
	}
	n := c.cfg.N
	pi := make([]float64, n+1)
	for i := range pi {
		pi[i] = 1 / float64(n+1)
	}
	for iter := 0; iter < maxIters; iter++ {
		next, err := c.tm.VecMul(pi)
		if err != nil {
			return nil, err
		}
		change := 0.0
		for i := range next {
			change += math.Abs(next[i] - pi[i])
		}
		pi = next
		if change < tol {
			break
		}
	}
	return pi, nil
}

// Simulate runs the chain forward from state k0 for steps steps and
// returns the end state. It samples from the exact transition rows, so
// its law matches the matrix by construction; tests use it to
// cross-check the analytic absorption quantities.
func (c *Chain) Simulate(r *rng.RNG, k0, steps int) (int, error) {
	if k0 < 0 || k0 > c.cfg.N || steps < 0 || r == nil {
		return 0, fmt.Errorf("%w: simulate k0=%d steps=%d", ErrBadConfig, k0, steps)
	}
	k := k0
	row := make([]float64, c.cfg.N+1)
	for s := 0; s < steps; s++ {
		for j := range row {
			row[j] = c.tm.At(k, j)
		}
		next, err := r.Categorical(row)
		if err != nil {
			return 0, fmt.Errorf("markov: simulate: %w", err)
		}
		k = next
		if c.IsAbsorbing() && (k == 0 || k == c.cfg.N) {
			break
		}
	}
	return k, nil
}

// WrongFixationProbability returns the probability that the µ = 0 chain,
// started from the 50/50 split (or ⌈N/2⌉), fixates on the *worse*
// option. This is the quantity the paper's µ > 0 assumption suppresses.
func (c *Chain) WrongFixationProbability() (float64, error) {
	h, err := c.FixationProbabilities()
	if err != nil {
		return 0, err
	}
	start := (c.cfg.N + 1) / 2
	pBest := h[start] // absorb at all-on-option-1
	if c.cfg.Eta1 >= c.cfg.Eta2 {
		return 1 - pBest, nil
	}
	return pBest, nil
}
