// Package core is the library's public entry point: it wires the
// substrate packages into the paper's two headline objects — the
// finite-population social-learning dynamics (Theorem 4.4) and its
// infinite-population stochastic-MWU limit (Theorem 4.3) — behind one
// configuration type, and exposes the theorems' closed-form bounds.
//
// Quick use:
//
//	g, err := core.New(core.Config{
//		N:         10_000,
//		Qualities: []float64{0.9, 0.5, 0.5},
//		Beta:      0.7,
//	})
//	report, err := g.Run(1_000)
//	fmt.Println(report.Regret, report.Popularity)
//
// Config.Mu defaults to the largest exploration rate the theorems allow
// (δ²/6); Config.Alpha defaults to the paper's symmetric 1−β; N = 0
// selects the infinite-population process.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/infinite"
	"repro/internal/netpop"
	"repro/internal/population"
	"repro/internal/regret"
)

// ErrBadConfig reports an invalid group configuration.
var ErrBadConfig = errors.New("core: invalid config")

// EngineKind selects the finite-population engine implementation.
type EngineKind int

// Available engines.
const (
	// EngineAggregate advances per-option counts (O(m) per step);
	// the default, suitable for N up to millions.
	EngineAggregate EngineKind = iota
	// EngineAgent walks every individual (O(N) per step); required for
	// heterogeneous rules, useful for small-N studies.
	EngineAgent
)

// Config describes one social-learning system.
type Config struct {
	// N is the population size; 0 selects the infinite-population
	// stochastic-MWU process.
	N int
	// Qualities are the option success probabilities η_j. They need not
	// be sorted; Regret is always measured against the maximum.
	Qualities []float64
	// Beta is the adoption probability on a good signal (1/2 < β < 1
	// for the theorems; β = 1/2 is allowed but gives δ = 0).
	Beta float64
	// Alpha is the adoption probability on a bad signal. Zero means
	// "default to the paper's symmetric rule α = 1−β". To force a true
	// zero, set AlphaIsZero.
	Alpha float64
	// AlphaIsZero forces α = 0 (the pure sampling-ablation regime).
	AlphaIsZero bool
	// Mu is the exploration rate. Zero means "default to δ²/6, the
	// largest value the theorems permit". To force µ = 0 (no
	// exploration; the group can fixate), set MuIsZero.
	Mu float64
	// MuIsZero forces µ = 0.
	MuIsZero bool
	// Engine selects the finite-population implementation.
	Engine EngineKind
	// Network optionally restricts stage-one sampling to graph
	// neighbors (the conclusion's extension). When set, the node count
	// is the population size (N is ignored) and the lazy neighbor-
	// sampling dynamics of internal/netpop drives the group.
	Network *graph.Graph
	// Environment optionally overrides the default IID Bernoulli
	// environment built from Qualities (e.g. a Drifting or Switching
	// environment). When set, Qualities may be nil.
	Environment env.Environment
	// Seed drives all randomness.
	Seed uint64
}

// Group is a running social-learning system (finite, infinite, or
// network-restricted).
type Group struct {
	finite   population.Engine
	infinite *infinite.Process
	network  *netpop.Dynamics
	environ  env.Environment
	eta1     float64
	rule     agent.Linear
	mu       float64
}

// Report summarizes a completed run window.
type Report struct {
	// Steps is the number of steps in the window.
	Steps int
	// AverageGroupReward is (1/T)·Σ_t Σ_j Q^{t−1}_j R^t_j.
	AverageGroupReward float64
	// Regret is η_1 − AverageGroupReward, the paper's average regret
	// (a single-run realization; average over seeds for expectations).
	Regret float64
	// Popularity is the final popularity / distribution vector.
	Popularity []float64
}

// resolve computes the effective environment, adoption rule, and
// exploration rate, applying the paper defaults (α = 1−β, µ = δ²/6)
// and validating each. It allocates only O(m) — never per-agent or
// per-edge state — so it is safe on a request-validation path.
func (c Config) resolve() (env.Environment, agent.Linear, float64, error) {
	environ := c.Environment
	if environ == nil {
		var err error
		environ, err = env.NewIIDBernoulli(c.Qualities)
		if err != nil {
			return nil, agent.Linear{}, 0, fmt.Errorf("core: %w", err)
		}
	}
	if environ.Options() <= 0 {
		return nil, agent.Linear{}, 0, fmt.Errorf("%w: environment reports no options", ErrBadConfig)
	}

	alpha := c.Alpha
	if alpha == 0 && !c.AlphaIsZero {
		alpha = 1 - c.Beta
	}
	rule, err := agent.NewLinear(alpha, c.Beta)
	if err != nil {
		return nil, agent.Linear{}, 0, fmt.Errorf("core: %w", err)
	}

	mu := c.Mu
	if mu == 0 && !c.MuIsZero {
		if c.Beta > 0.5 && c.Beta < 1 {
			delta, err := regret.Delta(c.Beta)
			if err != nil {
				return nil, agent.Linear{}, 0, fmt.Errorf("core: %w", err)
			}
			mu, err = regret.MaxMu(delta)
			if err != nil {
				return nil, agent.Linear{}, 0, fmt.Errorf("core: %w", err)
			}
		} else {
			mu = 0.05
		}
	}
	if math.IsNaN(mu) || mu < 0 || mu > 1 {
		return nil, agent.Linear{}, 0, fmt.Errorf("%w: mu=%v", ErrBadConfig, mu)
	}
	return environ, rule, mu, nil
}

// Validate checks every constraint New enforces without materializing
// engine state: New allocates O(N) per-agent state (agent engine) or
// O(nodes + edges) network state, while Validate costs O(m). Validate
// returning nil means New succeeds on the same config.
func (c Config) Validate() error {
	_, _, _, err := c.resolve()
	if err != nil {
		return err
	}
	if c.Network != nil {
		if c.Network.N() == 0 {
			return fmt.Errorf("%w: empty network", ErrBadConfig)
		}
		return nil
	}
	if c.N == 0 {
		return nil
	}
	if c.N < 0 {
		return fmt.Errorf("%w: N=%d", ErrBadConfig, c.N)
	}
	switch c.Engine {
	case EngineAggregate, EngineAgent:
		return nil
	default:
		return fmt.Errorf("%w: unknown engine %d", ErrBadConfig, c.Engine)
	}
}

// New validates the config and constructs the group.
func New(c Config) (*Group, error) {
	environ, rule, mu, err := c.resolve()
	if err != nil {
		return nil, err
	}
	eta1 := 0.0
	for _, q := range environ.Qualities() {
		if q > eta1 {
			eta1 = q
		}
	}

	g := &Group{environ: environ, eta1: eta1, rule: rule, mu: mu}
	if c.Network != nil {
		d, err := netpop.New(netpop.Config{
			Graph: c.Network, Mu: mu, Rule: rule, Env: environ, Seed: c.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		g.network = d
		return g, nil
	}
	if c.N == 0 {
		p, err := infinite.New(infinite.Config{
			Mu: mu, Rule: rule, Env: environ, Seed: c.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		g.infinite = p
		return g, nil
	}
	popCfg := population.Config{
		N: c.N, Mu: mu, Rule: rule, Env: environ, Seed: c.Seed,
	}
	switch c.Engine {
	case EngineAggregate:
		g.finite, err = population.NewAggregateEngine(popCfg)
	case EngineAgent:
		g.finite, err = population.NewAgentEngine(popCfg)
	default:
		return nil, fmt.Errorf("%w: unknown engine %d", ErrBadConfig, c.Engine)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return g, nil
}

// Template is a pre-resolved Config for parameter sweeps: it runs
// resolve once — environment construction, adoption-rule validation,
// the α = 1−β and µ = δ²/6 defaults, the η_1 benchmark — and then
// stamps out Groups that differ only in the variant axes (population
// size, engine, seed). Every Group shares the template's environment,
// so NewTemplate requires the default IID Bernoulli environment (built
// from Qualities), which is immutable and safe for concurrent Step
// calls; custom environments may carry per-run state (Drifting,
// Switching) and are rejected. Network configs are rejected for the
// same reason: a graph is per-run state.
//
// Group(n, engine, seed) is equivalent to New with the same Config —
// the constructed group reproduces a direct New(...).Run(...) bit for
// bit — minus the per-group resolve cost.
type Template struct {
	environ env.Environment
	rule    agent.Linear
	mu      float64
	eta1    float64
}

// NewTemplate resolves the sweep-invariant parts of c. The variant
// fields (N, Engine, Seed) of c are ignored; pass them to Group.
func NewTemplate(c Config) (*Template, error) {
	if c.Environment != nil {
		return nil, fmt.Errorf("%w: template requires the default IID environment (custom environments may be stateful and cannot be shared across sweep runs)", ErrBadConfig)
	}
	if c.Network != nil {
		return nil, fmt.Errorf("%w: template does not support network configs (the graph is per-run state)", ErrBadConfig)
	}
	environ, rule, mu, err := c.resolve()
	if err != nil {
		return nil, err
	}
	eta1 := 0.0
	for _, q := range environ.Qualities() {
		if q > eta1 {
			eta1 = q
		}
	}
	return &Template{environ: environ, rule: rule, mu: mu, eta1: eta1}, nil
}

// Group builds one group for a variant of the template's family: n = 0
// selects the infinite-population process, otherwise engine selects the
// finite implementation. The result is identical to New with the
// corresponding Config.
func (t *Template) Group(n int, engine EngineKind, seed uint64) (*Group, error) {
	g := &Group{environ: t.environ, eta1: t.eta1, rule: t.rule, mu: t.mu}
	if n == 0 {
		p, err := infinite.New(infinite.Config{
			Mu: t.mu, Rule: t.rule, Env: t.environ, Seed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		g.infinite = p
		return g, nil
	}
	popCfg := population.Config{
		N: n, Mu: t.mu, Rule: t.rule, Env: t.environ, Seed: seed,
	}
	var err error
	switch engine {
	case EngineAggregate:
		g.finite, err = population.NewAggregateEngine(popCfg)
	case EngineAgent:
		g.finite, err = population.NewAgentEngine(popCfg)
	default:
		return nil, fmt.Errorf("%w: unknown engine %d", ErrBadConfig, engine)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return g, nil
}

// IsInfinite reports whether the group is the infinite-population
// process.
func (g *Group) IsInfinite() bool { return g.infinite != nil }

// Mu returns the effective exploration rate.
func (g *Group) Mu() float64 { return g.mu }

// Rule returns the effective adoption rule.
func (g *Group) Rule() agent.Linear { return g.rule }

// T returns the number of completed steps.
func (g *Group) T() int {
	switch {
	case g.infinite != nil:
		return g.infinite.T()
	case g.network != nil:
		return g.network.T()
	default:
		return g.finite.T()
	}
}

// Options returns the number of options m.
func (g *Group) Options() int { return g.environ.Options() }

// Popularity returns the current popularity vector (Q^t for finite
// groups, P^t for the infinite process, held-option fractions for
// network groups).
func (g *Group) Popularity() []float64 {
	switch {
	case g.infinite != nil:
		return g.infinite.Distribution()
	case g.network != nil:
		return g.network.Fractions()
	default:
		return g.finite.Popularity()
	}
}

// AppendPopularity appends the current popularity vector to dst and
// returns it, allocating only when dst lacks capacity — the no-copy
// accessor for per-step callers (trace recording, experiment tables).
func (g *Group) AppendPopularity(dst []float64) []float64 {
	switch {
	case g.infinite != nil:
		return g.infinite.AppendDistribution(dst)
	case g.network != nil:
		return g.network.AppendFractions(dst)
	default:
		return g.finite.AppendPopularity(dst)
	}
}

// Reset reinitializes the group in place to the state New would produce
// with the same config and the given seed, reusing every engine buffer:
// a reset group replays a fresh group's run bit for bit. It requires
// the default IID Bernoulli environment — custom environments may carry
// per-run state the group cannot rewind — and is how sweep workers
// recycle engine scratch across (variant, replication) tasks.
func (g *Group) Reset(seed uint64) error {
	if _, ok := g.environ.(*env.IIDBernoulli); !ok {
		return fmt.Errorf("%w: Reset requires the stateless IID Bernoulli environment", ErrBadConfig)
	}
	switch {
	case g.infinite != nil:
		g.infinite.Reset(seed)
	case g.network != nil:
		g.network.Reset(seed)
	default:
		g.finite.Reset(seed)
	}
	return nil
}

// Step advances one time step.
func (g *Group) Step() error {
	switch {
	case g.infinite != nil:
		return g.infinite.Step()
	case g.network != nil:
		return g.network.Step()
	default:
		return g.finite.Step()
	}
}

// GroupReward returns the latest step's Σ_j Q^{t−1}_j R^t_j.
func (g *Group) GroupReward() float64 {
	switch {
	case g.infinite != nil:
		return g.infinite.GroupReward()
	case g.network != nil:
		return g.network.GroupReward()
	default:
		return g.finite.GroupReward()
	}
}

// BestQuality returns the largest η_j the group is measured against.
func (g *Group) BestQuality() float64 { return g.eta1 }

// Run advances steps steps and reports the window.
func (g *Group) Run(steps int) (Report, error) {
	if steps <= 0 {
		return Report{}, fmt.Errorf("%w: steps=%d", ErrBadConfig, steps)
	}
	var avg float64
	var err error
	switch {
	case g.infinite != nil:
		avg, err = infinite.Run(g.infinite, steps)
	case g.network != nil:
		avg, err = netpop.Run(g.network, steps)
	default:
		avg, err = population.Run(g.finite, steps)
	}
	if err != nil {
		return Report{}, err
	}
	return Report{
		Steps:              steps,
		AverageGroupReward: avg,
		Regret:             g.eta1 - avg,
		Popularity:         g.Popularity(),
	}, nil
}

// Bounds collects every closed-form quantity the paper proves for a
// given (m, β) configuration.
type Bounds struct {
	// Delta is δ = ln(β/(1−β)).
	Delta float64
	// MuMax is the largest exploration rate with 6µ ≤ δ².
	MuMax float64
	// MinHorizon is ⌈ln m/δ²⌉, where the regret bounds take effect.
	MinHorizon int
	// InfiniteRegret is Theorem 4.3's 3δ.
	InfiniteRegret float64
	// FiniteRegret is Theorem 4.4's 6δ.
	FiniteRegret float64
	// HedgeOptimal is the tuned-MWU rate 2·sqrt(ln m/MinHorizon) for
	// comparison at the same horizon.
	HedgeOptimal float64
}

// TheoremBounds computes the paper's bounds for m options and rate β
// (requires 1/2 < β ≤ e/(e+1) for all bounds to be in force).
func TheoremBounds(m int, beta float64) (Bounds, error) {
	delta, err := regret.Delta(beta)
	if err != nil {
		return Bounds{}, err
	}
	muMax, err := regret.MaxMu(delta)
	if err != nil {
		return Bounds{}, err
	}
	horizon, err := regret.MinHorizon(m, delta)
	if err != nil {
		return Bounds{}, err
	}
	var inf3, fin6 float64
	if delta <= 1 {
		inf3, err = regret.InfiniteBound(delta)
		if err != nil {
			return Bounds{}, err
		}
		fin6, err = regret.FiniteBound(delta)
		if err != nil {
			return Bounds{}, err
		}
	} else {
		inf3, fin6 = 3*delta, 6*delta
	}
	hedge, err := regret.HedgeOptimalBound(m, horizon)
	if err != nil {
		return Bounds{}, err
	}
	return Bounds{
		Delta:          delta,
		MuMax:          muMax,
		MinHorizon:     horizon,
		InfiniteRegret: inf3,
		FiniteRegret:   fin6,
		HedgeOptimal:   hedge,
	}, nil
}
