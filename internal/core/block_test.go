package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func blockBaseConfig() Config {
	return Config{
		N:         400,
		Qualities: []float64{0.9, 0.5, 0.5},
		Beta:      0.7,
		Seed:      21,
	}
}

func runBlock(t *testing.T, b *BlockGroup, steps int) (pops [][]float64, cums []float64) {
	t.Helper()
	for s := 0; s < steps; s++ {
		if err := b.StepBlock(); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < b.Lanes(); k++ {
		pops = append(pops, b.AppendPopularity(k, nil))
		cums = append(cums, b.CumulativeGroupReward(k))
	}
	return pops, cums
}

func assertLanesEqual(t *testing.T, label string, wantPops, gotPops [][]float64, wantCums, gotCums []float64, off int) {
	t.Helper()
	for k := range gotPops {
		if math.Float64bits(wantCums[off+k]) != math.Float64bits(gotCums[k]) {
			t.Fatalf("%s: lane %d cum reward %v, want %v", label, off+k, gotCums[k], wantCums[off+k])
		}
		for j := range gotPops[k] {
			if math.Float64bits(wantPops[off+k][j]) != math.Float64bits(gotPops[k][j]) {
				t.Fatalf("%s: lane %d popularity[%d] %v, want %v", label, off+k, j, gotPops[k][j], wantPops[off+k][j])
			}
		}
	}
}

// TestBlockGroupChunkInvariance covers all four engine paths at the
// core seam: a 5-lane block must equal its 4+1 split and each
// single-lane block, bit for bit.
func TestBlockGroupChunkInvariance(t *testing.T) {
	t.Parallel()
	ring, err := graph.Ring(40)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"aggregate", func() Config { c := blockBaseConfig(); c.N = 30_000; return c }()},
		{"agent", func() Config { c := blockBaseConfig(); c.Engine = EngineAgent; return c }()},
		{"infinite", func() Config { c := blockBaseConfig(); c.N = 0; return c }()},
		{"network", func() Config { c := blockBaseConfig(); c.Network = ring; return c }()},
	}
	const steps, lanes = 40, 5
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			whole, err := NewBlock(tc.cfg, 0, lanes)
			if err != nil {
				t.Fatal(err)
			}
			wantPops, wantCums := runBlock(t, whole, steps)
			for _, chunk := range []struct{ lane0, width int }{{0, 4}, {4, 1}, {2, 1}} {
				b, err := NewBlock(tc.cfg, chunk.lane0, chunk.width)
				if err != nil {
					t.Fatal(err)
				}
				gotPops, gotCums := runBlock(t, b, steps)
				assertLanesEqual(t, tc.name, wantPops, gotPops, wantCums, gotCums, chunk.lane0)
			}
		})
	}
}

// TestBlockGroupDiffersFromV1 pins that v2 is a genuinely different
// draw order: lane 0 of a block never reproduces the v1 trajectory of
// the same seed, for any engine. (This is what justifies draw_order
// being part of the cache key.)
func TestBlockGroupDiffersFromV1(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"aggregate", func() Config { c := blockBaseConfig(); c.N = 30_000; return c }()},
		{"agent", func() Config { c := blockBaseConfig(); c.Engine = EngineAgent; return c }()},
		{"infinite", func() Config { c := blockBaseConfig(); c.N = 0; return c }()},
	}
	const steps = 60
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			v1, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := v1.Run(steps)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBlock(tc.cfg, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < steps; s++ {
				if err := b.StepBlock(); err != nil {
					t.Fatal(err)
				}
			}
			v2avg := b.CumulativeGroupReward(0) / float64(steps)
			if math.Float64bits(v2avg) == math.Float64bits(rep.AverageGroupReward) {
				t.Fatalf("%s: v2 lane 0 reproduced the v1 trajectory (avg %v)", tc.name, v2avg)
			}
		})
	}
}

// TestTemplateNewBlockMatchesNewBlock pins the template path: a block
// from a resolved template equals one from core.NewBlock.
func TestTemplateNewBlockMatchesNewBlock(t *testing.T) {
	t.Parallel()
	cfg := blockBaseConfig()
	tmpl, err := NewTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const steps, lanes = 30, 5
	for _, engCase := range []struct {
		n      int
		engine EngineKind
	}{{25_000, EngineAggregate}, {400, EngineAgent}, {0, EngineAggregate}} {
		direct := cfg
		direct.N = engCase.n
		direct.Engine = engCase.engine
		want, err := NewBlock(direct, 0, lanes)
		if err != nil {
			t.Fatal(err)
		}
		wantPops, wantCums := runBlock(t, want, steps)
		got, err := tmpl.NewBlock(engCase.n, engCase.engine, cfg.Seed, 0, lanes)
		if err != nil {
			t.Fatal(err)
		}
		gotPops, gotCums := runBlock(t, got, steps)
		assertLanesEqual(t, "template block", wantPops, gotPops, wantCums, gotCums, 0)
	}
}

// TestBlockGroupResetReplays covers Reset through the core seam,
// including the network fallback path.
func TestBlockGroupResetReplays(t *testing.T) {
	t.Parallel()
	ring, err := graph.Ring(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"agent", func() Config { c := blockBaseConfig(); c.Engine = EngineAgent; return c }()},
		{"network", func() Config { c := blockBaseConfig(); c.Network = ring; return c }()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const steps, lane0, lanes = 25, 2, 4
			b, err := NewBlock(tc.cfg, lane0, lanes)
			if err != nil {
				t.Fatal(err)
			}
			wantPops, wantCums := runBlock(t, b, steps)
			if err := b.Reset(tc.cfg.Seed, lane0); err != nil {
				t.Fatal(err)
			}
			if b.T() != 0 {
				t.Fatal("Reset did not zero the step counter")
			}
			gotPops, gotCums := runBlock(t, b, steps)
			assertLanesEqual(t, tc.name+" reset", wantPops, gotPops, wantCums, gotCums, 0)
		})
	}
}

func TestNewBlockRejections(t *testing.T) {
	t.Parallel()
	cfg := blockBaseConfig()
	if _, err := NewBlock(cfg, -1, 2); err == nil {
		t.Fatal("expected error for negative lane0")
	}
	if _, err := NewBlock(cfg, 0, 0); err == nil {
		t.Fatal("expected error for zero lanes")
	}
	custom := cfg
	custom.Environment = mustEnv(t, cfg.Qualities)
	if _, err := NewBlock(custom, 0, 2); err == nil {
		t.Fatal("expected error for custom environment")
	}
	bad := cfg
	bad.Engine = EngineKind(99)
	if _, err := NewBlock(bad, 0, 2); err == nil {
		t.Fatal("expected error for unknown engine")
	}
}
