package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()

	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Qualities: []float64{0.9, 0.5}, Beta: 1.5}); err == nil {
		t.Error("beta > 1 accepted")
	}
	if _, err := New(Config{Qualities: []float64{0.9, 0.5}, Beta: 0.7, Mu: 2}); !errors.Is(err, ErrBadConfig) {
		t.Error("mu > 1 accepted")
	}
	if _, err := New(Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 0.7, Engine: EngineKind(99)}); !errors.Is(err, ErrBadConfig) {
		t.Error("unknown engine accepted")
	}
}

func TestDefaults(t *testing.T) {
	t.Parallel()

	g, err := New(Config{N: 100, Qualities: []float64{0.9, 0.5}, Beta: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Alpha defaults to 1 - beta.
	if got := g.Rule().Alpha(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("default alpha = %v, want 0.3", got)
	}
	// Mu defaults to delta^2/6.
	delta := math.Log(0.7 / 0.3)
	if got := g.Mu(); math.Abs(got-delta*delta/6) > 1e-12 {
		t.Errorf("default mu = %v, want %v", got, delta*delta/6)
	}
	if g.IsInfinite() {
		t.Error("finite group reported infinite")
	}
}

func TestForcedZeros(t *testing.T) {
	t.Parallel()

	g, err := New(Config{
		N: 100, Qualities: []float64{0.9, 0.5}, Beta: 0.7,
		AlphaIsZero: true, MuIsZero: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rule().Alpha() != 0 {
		t.Errorf("alpha = %v, want forced 0", g.Rule().Alpha())
	}
	if g.Mu() != 0 {
		t.Errorf("mu = %v, want forced 0", g.Mu())
	}
}

func TestInfiniteSelection(t *testing.T) {
	t.Parallel()

	g, err := New(Config{Qualities: []float64{0.9, 0.5}, Beta: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsInfinite() {
		t.Fatal("N=0 did not select infinite process")
	}
	rep, err := g.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 200 || g.T() != 200 {
		t.Errorf("steps = %d / T = %d", rep.Steps, g.T())
	}
	if !stats.IsProbabilityVector(rep.Popularity, 1e-9) {
		t.Errorf("popularity %v", rep.Popularity)
	}
}

func TestFiniteEnginesRun(t *testing.T) {
	t.Parallel()

	for _, engine := range []EngineKind{EngineAggregate, EngineAgent} {
		g, err := New(Config{
			N: 500, Qualities: []float64{0.9, 0.4, 0.4}, Beta: 0.7,
			Engine: engine, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := g.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Regret > 0.6 || rep.Regret < -0.2 {
			t.Errorf("engine %d: regret %v implausible", engine, rep.Regret)
		}
		if rep.Popularity[0] < 0.4 {
			t.Errorf("engine %d: best-option share %v after 300 steps", engine, rep.Popularity[0])
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	g, err := New(Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); !errors.Is(err, ErrBadConfig) {
		t.Error("steps=0 accepted")
	}
}

func TestCustomEnvironment(t *testing.T) {
	t.Parallel()

	environ, err := env.NewSwitching([]float64{0.9, 0.2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{N: 100, Beta: 0.7, Environment: environ, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(120); err != nil {
		t.Fatal(err)
	}
}

func TestStepAdvances(t *testing.T) {
	t.Parallel()

	g, err := New(Config{N: 50, Qualities: []float64{0.8, 0.3}, Beta: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if g.T() != 10 {
		t.Errorf("T = %d, want 10", g.T())
	}
}

func TestTheoremBounds(t *testing.T) {
	t.Parallel()

	b, err := TheoremBounds(10, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := math.Log(0.6 / 0.4)
	if math.Abs(b.Delta-wantDelta) > 1e-12 {
		t.Errorf("Delta = %v, want %v", b.Delta, wantDelta)
	}
	if math.Abs(b.InfiniteRegret-3*wantDelta) > 1e-12 {
		t.Errorf("InfiniteRegret = %v", b.InfiniteRegret)
	}
	if math.Abs(b.FiniteRegret-2*b.InfiniteRegret) > 1e-12 {
		t.Errorf("FiniteRegret = %v", b.FiniteRegret)
	}
	if b.MinHorizon != int(math.Ceil(math.Log(10)/(wantDelta*wantDelta))) {
		t.Errorf("MinHorizon = %d", b.MinHorizon)
	}
	if b.MuMax <= 0 || b.HedgeOptimal <= 0 {
		t.Errorf("bounds incomplete: %+v", b)
	}
	if _, err := TheoremBounds(10, 0.5); err == nil {
		t.Error("beta = 1/2 accepted (delta would be 0)")
	}
	// Large beta (delta > 1): still returns the formulas.
	big, err := TheoremBounds(10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if big.InfiniteRegret <= 3 {
		// delta = ln 9 ~ 2.2, so 3*delta > 6.
		t.Errorf("large-beta InfiniteRegret = %v", big.InfiniteRegret)
	}
}

// TestRegretWithinBound is the end-to-end check through the public API.
func TestRegretWithinBound(t *testing.T) {
	t.Parallel()

	const beta = 0.6
	b, err := TheoremBounds(5, beta)
	if err != nil {
		t.Fatal(err)
	}
	var regrets stats.Summary
	for rep := 0; rep < 20; rep++ {
		g, err := New(Config{
			N:         100000,
			Qualities: []float64{0.9, 0.4, 0.4, 0.4, 0.4},
			Beta:      beta,
			Seed:      uint64(100 + rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := g.Run(4 * b.MinHorizon)
		if err != nil {
			t.Fatal(err)
		}
		regrets.Add(rep2.Regret)
	}
	if regrets.Mean() > b.FiniteRegret {
		t.Errorf("mean regret %v exceeds Theorem 4.4 bound %v", regrets.Mean(), b.FiniteRegret)
	}
}

// TestConfigValidateMatchesNew checks the contract that Validate
// accepts exactly the configs New accepts — Validate is the cheap,
// non-materializing form used on request-validation paths.
func TestConfigValidateMatchesNew(t *testing.T) {
	t.Parallel()

	ring, err := graph.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"finite aggregate", Config{N: 100, Qualities: []float64{0.9, 0.5}, Beta: 0.7}},
		{"finite agent", Config{N: 100, Qualities: []float64{0.9, 0.5}, Beta: 0.7, Engine: EngineAgent}},
		{"infinite", Config{Qualities: []float64{0.9, 0.5}, Beta: 0.7}},
		{"network", Config{Qualities: []float64{0.9, 0.5}, Beta: 0.7, Network: ring}},
		{"forced zeros", Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 0.7, AlphaIsZero: true, MuIsZero: true}},
		{"custom environment", Config{N: 10, Beta: 0.7, Environment: mustEnv(t, []float64{0.8, 0.2})}},
		{"empty", Config{}},
		{"bad beta", Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 1.5}},
		{"bad quality", Config{N: 10, Qualities: []float64{0.9, 1.7}, Beta: 0.7}},
		{"bad mu", Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 0.7, Mu: 2}},
		{"negative n", Config{N: -1, Qualities: []float64{0.9, 0.5}, Beta: 0.7}},
		{"bad engine", Config{N: 10, Qualities: []float64{0.9, 0.5}, Beta: 0.7, Engine: EngineKind(99)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errV := c.cfg.Validate()
			_, errN := New(c.cfg)
			if (errV == nil) != (errN == nil) {
				t.Errorf("Validate = %v but New = %v; they must agree", errV, errN)
			}
			if errV != nil && !errors.Is(errV, ErrBadConfig) {
				// Both wrapped substrate errors and ErrBadConfig are
				// fine; just require a non-silent rejection.
				if errV.Error() == "" {
					t.Error("empty validation error")
				}
			}
		})
	}
}

func mustEnv(t *testing.T, qualities []float64) env.Environment {
	t.Helper()
	e, err := env.NewIIDBernoulli(qualities)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
