package core

// Tests for Group.Reset — the in-place reinitialization the sweep
// workers use to recycle engine buffers across (variant, replication)
// tasks. The contract: a reset group replays a freshly constructed
// group bit for bit, for every engine kind, and groups on stateful
// environments refuse to reset.

import (
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
)

func groupTrajectory(t *testing.T, g *Group, steps int) []float64 {
	t.Helper()
	out := make([]float64, 0, 2*steps)
	for s := 0; s < steps; s++ {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
		out = append(out, g.GroupReward(), g.Popularity()[0])
	}
	return out
}

func TestGroupResetReplaysFreshGroup(t *testing.T) {
	t.Parallel()
	ring, err := graph.Ring(40)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"aggregate", Config{N: 2000, Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7}},
		{"agent", Config{N: 300, Engine: EngineAgent, Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7}},
		{"infinite", Config{Qualities: []float64{0.8, 0.6}, Beta: 0.65}},
		{"network", Config{Network: ring, Qualities: []float64{0.9, 0.5}, Beta: 0.7}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const steps = 120
			cfg := tc.cfg
			cfg.Seed = 5
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			groupTrajectory(t, g, steps)

			// Reset to a different seed must reproduce a fresh group
			// with that seed, bit for bit.
			if err := g.Reset(42); err != nil {
				t.Fatal(err)
			}
			if g.T() != 0 {
				t.Fatalf("reset group reports T=%d", g.T())
			}
			cfg.Seed = 42
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := groupTrajectory(t, g, steps)
			want := groupTrajectory(t, fresh, steps)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: reset group %v, fresh group %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestGroupResetRejectsStatefulEnvironment(t *testing.T) {
	t.Parallel()
	drift, err := env.NewDrifting([]float64{0.8, 0.4}, 0.01, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{N: 100, Environment: drift, Beta: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Reset(4); err == nil {
		t.Fatal("Reset accepted a stateful (Drifting) environment")
	}
}
