package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// ExampleNew shows the minimal simulation loop: configure a finite
// group, run it, and read the regret report.
func ExampleNew() {
	g, err := core.New(core.Config{
		N:         100000,
		Qualities: []float64{0.9, 0.5, 0.5},
		Beta:      0.7,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := g.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best option share > 0.5: %v\n", report.Popularity[0] > 0.5)
	fmt.Printf("regret below finite bound: %v\n", report.Regret < 6)
	// Output:
	// best option share > 0.5: true
	// regret below finite bound: true
}

// ExampleTheoremBounds prints the paper's closed-form quantities for a
// configuration.
func ExampleTheoremBounds() {
	b, err := core.TheoremBounds(10, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta=%.4f minT=%d infinite<=%.4f finite<=%.4f\n",
		b.Delta, b.MinHorizon, b.InfiniteRegret, b.FiniteRegret)
	// Output:
	// delta=0.4055 minT=15 infinite<=1.2164 finite<=2.4328
}

// ExampleGroup_Step drives the infinite-population process one step at
// a time.
func ExampleGroup_Step() {
	g, err := core.New(core.Config{
		Qualities: []float64{0.9, 0.2},
		Beta:      0.7,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := g.Step(); err != nil {
			log.Fatal(err)
		}
	}
	p := g.Popularity()
	fmt.Printf("after 100 steps the best option dominates: %v\n", p[0] > 0.8)
	// Output:
	// after 100 steps the best option dominates: true
}
