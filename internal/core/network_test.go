package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

func TestNetworkGroup(t *testing.T) {
	t.Parallel()

	g10x10, err := graph.Torus(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := New(Config{
		Network:   g10x10,
		Qualities: []float64{0.9, 0.3},
		Beta:      0.7,
		Mu:        0.02,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grp.IsInfinite() {
		t.Error("network group reported infinite")
	}
	rep, err := grp.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if grp.T() != 500 {
		t.Errorf("T = %d", grp.T())
	}
	if !stats.IsProbabilityVector(rep.Popularity, 1e-9) {
		t.Fatalf("popularity %v", rep.Popularity)
	}
	if rep.Popularity[0] < 0.6 {
		t.Errorf("network group best-option share %v, want > 0.6", rep.Popularity[0])
	}
	if rep.Regret < -0.2 || rep.Regret > 0.7 {
		t.Errorf("regret %v implausible", rep.Regret)
	}
}

func TestNetworkGroupStepAndReward(t *testing.T) {
	t.Parallel()

	ring, err := graph.Ring(50)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := New(Config{
		Network:   ring,
		Qualities: []float64{0.8, 0.4},
		Beta:      0.6,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := grp.Step(); err != nil {
			t.Fatal(err)
		}
		if r := grp.GroupReward(); r < 0 || r > 1+1e-9 {
			t.Errorf("group reward %v out of [0,1]", r)
		}
	}
	if grp.T() != 5 {
		t.Errorf("T = %d", grp.T())
	}
}

func TestNetworkGroupValidation(t *testing.T) {
	t.Parallel()

	// Network with a bad rule still surfaces the rule error.
	ring, err := graph.Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Network: ring, Qualities: []float64{0.9, 0.5}, Beta: 1.7}); err == nil {
		t.Error("beta > 1 accepted for network group")
	}
}
