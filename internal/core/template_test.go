package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
)

// TestTemplateMatchesNew is the template's core guarantee: a group
// stamped out of a Template reproduces core.New with the equivalent
// Config bit for bit, for every engine and the infinite process.
func TestTemplateMatchesNew(t *testing.T) {
	t.Parallel()

	base := Config{
		Qualities: []float64{0.9, 0.5, 0.5},
		Beta:      0.7,
	}
	tmpl, err := NewTemplate(base)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		n      int
		engine EngineKind
	}{
		{"aggregate", 10_000, EngineAggregate},
		{"agent", 500, EngineAgent},
		{"infinite", 0, EngineAggregate},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			cfg.N = c.n
			cfg.Engine = c.engine
			cfg.Seed = 42
			want, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tmpl.Group(c.n, c.engine, 42)
			if err != nil {
				t.Fatal(err)
			}
			if got.Mu() != want.Mu() || got.BestQuality() != want.BestQuality() {
				t.Fatalf("template group mu=%v eta1=%v, want mu=%v eta1=%v",
					got.Mu(), got.BestQuality(), want.Mu(), want.BestQuality())
			}
			for step := 0; step < 200; step++ {
				if err := want.Step(); err != nil {
					t.Fatal(err)
				}
				if err := got.Step(); err != nil {
					t.Fatal(err)
				}
				if got.GroupReward() != want.GroupReward() {
					t.Fatalf("step %d: reward %v, want %v", step, got.GroupReward(), want.GroupReward())
				}
			}
			gp, wp := got.Popularity(), want.Popularity()
			for j := range wp {
				if gp[j] != wp[j] {
					t.Fatalf("popularity[%d] = %v, want %v", j, gp[j], wp[j])
				}
			}
		})
	}
}

// TestTemplateConcurrentGroups runs many groups off one template in
// parallel (under -race this verifies the shared environment is safe
// for concurrent stepping).
func TestTemplateConcurrentGroups(t *testing.T) {
	t.Parallel()

	tmpl, err := NewTemplate(Config{Qualities: []float64{0.8, 0.4}, Beta: 0.65})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := tmpl.Group(1000, EngineAggregate, uint64(i))
			if err != nil {
				errs[i] = err
				return
			}
			for s := 0; s < 300; s++ {
				if err := g.Step(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("group %d: %v", i, err)
		}
	}
}

func TestTemplateRejectsStatefulConfigs(t *testing.T) {
	t.Parallel()

	drift, err := env.NewDrifting([]float64{0.7, 0.3}, 0.01, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTemplate(Config{Environment: drift, Beta: 0.6}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("custom environment accepted: %v", err)
	}
	ring, err := graph.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTemplate(Config{Qualities: []float64{0.7, 0.3}, Beta: 0.6, Network: ring}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("network config accepted: %v", err)
	}
	if _, err := NewTemplate(Config{Qualities: []float64{0.7, 0.3}, Beta: 7}); err == nil {
		t.Error("invalid beta accepted")
	}
	tmpl, err := NewTemplate(Config{Qualities: []float64{0.7, 0.3}, Beta: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.Group(100, EngineKind(99), 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad engine accepted: %v", err)
	}
}
