package core

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/infinite"
	"repro/internal/netpop"
	"repro/internal/population"
	"repro/internal/rng"
)

// BlockGroup advances a block of independent replications ("lanes") of
// one configuration together — the v2 draw order. Lane k of a block
// built at (seed, lane0) is global replication lane lane0+k, seeded
// rng.StripeSeed(seed, lane0+k); each lane draws only from its own
// stream, so any partition of a variant's replications into blocks
// replays every lane bit-identically, and block width is purely a
// scheduling/memory choice.
//
// The aggregate, agent, and infinite engines run as true
// structure-of-arrays block engines (internal/population,
// internal/infinite); network configurations fall back to one v1-order
// group per lane under v2 lane seeding — the graph is immutable and
// shared, so the fallback costs one dynamics state per lane, which is
// why schedulers keep network blocks narrow.
type BlockGroup struct {
	agent   *population.AgentBlockEngine
	agg     *population.AggregateBlockEngine
	inf     *infinite.BlockProcess
	perLane []*Group  // network fallback, one group per lane
	cum     []float64 // per-lane cumulative reward for the fallback

	environ env.Environment
	eta1    float64
	lanes   int
}

// NewBlock validates the config and constructs a block of lanes
// replications at global lane lane0. Custom environments are rejected:
// one environment instance serves every lane, which is only sound for
// the stateless IID Bernoulli default.
func NewBlock(c Config, lane0, lanes int) (*BlockGroup, error) {
	if lane0 < 0 || lanes <= 0 {
		return nil, fmt.Errorf("%w: block of %d lanes at lane %d", ErrBadConfig, lanes, lane0)
	}
	if c.Environment != nil {
		return nil, fmt.Errorf("%w: block groups require the default IID environment (custom environments may be stateful and cannot be shared across lanes)", ErrBadConfig)
	}
	environ, rule, mu, err := c.resolve()
	if err != nil {
		return nil, err
	}
	eta1 := 0.0
	for _, q := range environ.Qualities() {
		if q > eta1 {
			eta1 = q
		}
	}
	b := &BlockGroup{environ: environ, eta1: eta1, lanes: lanes}
	if c.Network != nil {
		b.perLane = make([]*Group, 0, lanes)
		b.cum = make([]float64, lanes)
		for k := 0; k < lanes; k++ {
			d, err := netpop.New(netpop.Config{
				Graph: c.Network, Mu: mu, Rule: rule, Env: environ,
				Seed: rng.StripeSeed(c.Seed, lane0+k),
			})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			b.perLane = append(b.perLane, &Group{
				environ: environ, eta1: eta1, rule: rule, mu: mu, network: d,
			})
		}
		return b, nil
	}
	if c.N == 0 {
		b.inf, err = infinite.NewBlock(infinite.Config{
			Mu: mu, Rule: rule, Env: environ, Seed: c.Seed,
		}, lane0, lanes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		return b, nil
	}
	popCfg := population.Config{
		N: c.N, Mu: mu, Rule: rule, Env: environ, Seed: c.Seed,
	}
	switch c.Engine {
	case EngineAggregate:
		b.agg, err = population.NewAggregateBlockEngine(popCfg, lane0, lanes)
	case EngineAgent:
		b.agent, err = population.NewAgentBlockEngine(popCfg, lane0, lanes)
	default:
		return nil, fmt.Errorf("%w: unknown engine %d", ErrBadConfig, c.Engine)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return b, nil
}

// NewBlock builds one replication block for a variant of the
// template's family — the v2 counterpart of Template.Group. The result
// is identical to core.NewBlock with the corresponding Config.
func (t *Template) NewBlock(n int, engine EngineKind, seed uint64, lane0, lanes int) (*BlockGroup, error) {
	if lane0 < 0 || lanes <= 0 {
		return nil, fmt.Errorf("%w: block of %d lanes at lane %d", ErrBadConfig, lanes, lane0)
	}
	b := &BlockGroup{environ: t.environ, eta1: t.eta1, lanes: lanes}
	var err error
	if n == 0 {
		b.inf, err = infinite.NewBlock(infinite.Config{
			Mu: t.mu, Rule: t.rule, Env: t.environ, Seed: seed,
		}, lane0, lanes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		return b, nil
	}
	popCfg := population.Config{
		N: n, Mu: t.mu, Rule: t.rule, Env: t.environ, Seed: seed,
	}
	switch engine {
	case EngineAggregate:
		b.agg, err = population.NewAggregateBlockEngine(popCfg, lane0, lanes)
	case EngineAgent:
		b.agent, err = population.NewAgentBlockEngine(popCfg, lane0, lanes)
	default:
		return nil, fmt.Errorf("%w: unknown engine %d", ErrBadConfig, engine)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return b, nil
}

// Lanes returns the number of replication lanes.
func (b *BlockGroup) Lanes() int { return b.lanes }

// Options returns the number of options m.
func (b *BlockGroup) Options() int { return b.environ.Options() }

// BestQuality returns the largest η_j the lanes are measured against.
func (b *BlockGroup) BestQuality() float64 { return b.eta1 }

// T returns the number of completed steps (identical across lanes).
func (b *BlockGroup) T() int {
	switch {
	case b.agent != nil:
		return b.agent.T()
	case b.agg != nil:
		return b.agg.T()
	case b.inf != nil:
		return b.inf.T()
	default:
		return b.perLane[0].T()
	}
}

// StepBlock advances every lane one time step.
func (b *BlockGroup) StepBlock() error {
	switch {
	case b.agent != nil:
		return b.agent.StepBlock()
	case b.agg != nil:
		return b.agg.StepBlock()
	case b.inf != nil:
		return b.inf.StepBlock()
	default:
		for k, g := range b.perLane {
			if err := g.Step(); err != nil {
				return err
			}
			b.cum[k] += g.GroupReward()
		}
		return nil
	}
}

// GroupReward returns lane's latest-step group reward.
func (b *BlockGroup) GroupReward(lane int) float64 {
	switch {
	case b.agent != nil:
		return b.agent.GroupReward(lane)
	case b.agg != nil:
		return b.agg.GroupReward(lane)
	case b.inf != nil:
		return b.inf.GroupReward(lane)
	default:
		return b.perLane[lane].GroupReward()
	}
}

// CumulativeGroupReward returns lane's group reward summed over all
// steps since construction or Reset.
func (b *BlockGroup) CumulativeGroupReward(lane int) float64 {
	switch {
	case b.agent != nil:
		return b.agent.CumulativeGroupReward(lane)
	case b.agg != nil:
		return b.agg.CumulativeGroupReward(lane)
	case b.inf != nil:
		return b.inf.CumulativeGroupReward(lane)
	default:
		return b.cum[lane]
	}
}

// AppendPopularity appends lane's current popularity vector to dst and
// returns it.
func (b *BlockGroup) AppendPopularity(lane int, dst []float64) []float64 {
	switch {
	case b.agent != nil:
		return b.agent.AppendPopularity(lane, dst)
	case b.agg != nil:
		return b.agg.AppendPopularity(lane, dst)
	case b.inf != nil:
		return b.inf.AppendDistribution(lane, dst)
	default:
		return b.perLane[lane].AppendPopularity(dst)
	}
}

// Reset reinitializes the block in place to the state its constructor
// would produce for (seed, lane0), reusing every buffer — the block
// counterpart of Group.Reset, with the same stateless-environment
// requirement.
func (b *BlockGroup) Reset(seed uint64, lane0 int) error {
	if lane0 < 0 {
		return fmt.Errorf("%w: reset at lane %d", ErrBadConfig, lane0)
	}
	if _, ok := b.environ.(*env.IIDBernoulli); !ok {
		return fmt.Errorf("%w: Reset requires the stateless IID Bernoulli environment", ErrBadConfig)
	}
	switch {
	case b.agent != nil:
		b.agent.Reset(seed, lane0)
	case b.agg != nil:
		b.agg.Reset(seed, lane0)
	case b.inf != nil:
		b.inf.Reset(seed, lane0)
	default:
		for k, g := range b.perLane {
			g.network.Reset(rng.StripeSeed(seed, lane0+k))
			b.cum[k] = 0
		}
	}
	return nil
}
