package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	t.Parallel()

	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	if _, _, err := s.CI95(); !errors.Is(err, ErrNoData) {
		t.Fatal("CI95 on empty summary should error")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	low, high, err := s.CI95()
	if err != nil {
		t.Fatal(err)
	}
	if low >= s.Mean() || high <= s.Mean() {
		t.Errorf("CI [%v,%v] does not bracket mean %v", low, high, s.Mean())
	}
}

func TestSummaryMerge(t *testing.T) {
	t.Parallel()

	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole, left, right Summary
	for i, x := range data {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", left.Count(), whole.Count())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != 1 || left.Max() != 10 {
		t.Errorf("merged min/max %v/%v", left.Min(), left.Max())
	}

	var empty Summary
	empty.Merge(left)
	if empty.Count() != left.Count() || empty.Mean() != left.Mean() {
		t.Error("merging into empty summary failed")
	}
	before := left.Count()
	left.Merge(Summary{})
	if left.Count() != before {
		t.Error("merging empty summary changed count")
	}
}

func TestMean(t *testing.T) {
	t.Parallel()

	if _, err := Mean(nil); !errors.Is(err, ErrNoData) {
		t.Error("Mean(nil) should error")
	}
	got, err := Mean([]float64{1, 2, 3})
	if err != nil || got != 2 {
		t.Errorf("Mean = %v, %v; want 2, nil", got, err)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()

	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	tests := []struct {
		q, want float64
	}{
		{q: 0, want: 1},
		{q: 1, want: 9},
		{q: 0.5, want: 3.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Error("empty input should error")
	}
	if _, err := Quantile(xs, 1.5); !errors.Is(err, ErrBadInput) {
		t.Error("q>1 should error")
	}
	one, err := Quantile([]float64{7}, 0.3)
	if err != nil || one != 7 {
		t.Errorf("single-element quantile = %v, %v", one, err)
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()

	if _, err := NewHistogram(1, 0, 10); !errors.Is(err, ErrBadInput) {
		t.Error("inverted range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Error("zero bins accepted")
	}
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[5] != 1 {
		t.Errorf("bin 5 = %d, want 1", h.Counts[5])
	}
	if h.Counts[9] != 1 {
		t.Errorf("bin 9 = %d, want 1", h.Counts[9])
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestChernoffBound(t *testing.T) {
	t.Parallel()

	got, err := ChernoffBound(100, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Exp(-100*0.5*0.04/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ChernoffBound = %v, want %v", got, want)
	}
	bad := []struct {
		n            int
		gamma, delta float64
	}{
		{n: 0, gamma: 0.5, delta: 0.5},
		{n: 10, gamma: 0, delta: 0.5},
		{n: 10, gamma: 0.5, delta: 0},
		{n: 10, gamma: 0.5, delta: 1.5},
		{n: 10, gamma: 1.5, delta: 0.5},
	}
	for _, b := range bad {
		if _, err := ChernoffBound(b.n, b.gamma, b.delta); !errors.Is(err, ErrBadInput) {
			t.Errorf("ChernoffBound(%d,%v,%v): want ErrBadInput", b.n, b.gamma, b.delta)
		}
	}
}

// TestChernoffBoundIsValid checks the bound actually dominates the
// empirical tail probability it promises to bound.
func TestChernoffBoundIsValid(t *testing.T) {
	t.Parallel()

	const n, trials = 200, 5000
	const gamma, delta = 0.3, 0.5
	r := rng.New(123)
	exceed := 0
	for trial := 0; trial < trials; trial++ {
		sum := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(gamma) {
				sum++
			}
		}
		if math.Abs(float64(sum)/n-gamma) > gamma*delta {
			exceed++
		}
	}
	bound, err := ChernoffBound(n, gamma, delta)
	if err != nil {
		t.Fatal(err)
	}
	empirical := float64(exceed) / trials
	if empirical > bound {
		t.Errorf("empirical tail %v exceeds Chernoff bound %v", empirical, bound)
	}
}

func TestHoeffdingBound(t *testing.T) {
	t.Parallel()

	got, err := HoeffdingBound(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Exp(-2*50*0.01)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("HoeffdingBound = %v, want %v", got, want)
	}
	if _, err := HoeffdingBound(0, 0.1); !errors.Is(err, ErrBadInput) {
		t.Error("n=0 accepted")
	}
}

func TestLinearFit(t *testing.T) {
	t.Parallel()

	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = (%v, %v, %v), want (1, 2, 1)", a, b, r2)
	}
	if _, _, _, err := LinearFit(xs, ys[:3]); !errors.Is(err, ErrBadInput) {
		t.Error("mismatched lengths accepted")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrNoData) {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); !errors.Is(err, ErrBadInput) {
		t.Error("degenerate x accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	t.Parallel()

	got, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || got != 1 {
		t.Errorf("TV = %v, %v; want 1, nil", got, err)
	}
	got, err = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil || got != 0 {
		t.Errorf("TV = %v, %v; want 0, nil", got, err)
	}
	if _, err := TotalVariation([]float64{1}, []float64{1, 0}); !errors.Is(err, ErrBadInput) {
		t.Error("mismatched lengths accepted")
	}
}

func TestKLDivergence(t *testing.T) {
	t.Parallel()

	got, err := KLDivergence([]float64{0.5, 0.5}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
	inf, err := KLDivergence([]float64{1, 0}, []float64{0, 1})
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("KL with zero support = %v, want +Inf", inf)
	}
	zero, err := KLDivergence([]float64{0, 1}, []float64{0, 1})
	if err != nil || zero != 0 {
		t.Errorf("KL(p,p) = %v, want 0", zero)
	}
}

func TestMaxRatioDeviation(t *testing.T) {
	t.Parallel()

	got, err := MaxRatioDeviation([]float64{0.4, 0.6}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("deviation = %v, want 0.2", got)
	}
	inf, err := MaxRatioDeviation([]float64{0.5}, []float64{0})
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("deviation with q=0 = %v, want +Inf", inf)
	}
	both, err := MaxRatioDeviation([]float64{0}, []float64{0})
	if err != nil || both != 0 {
		t.Errorf("deviation 0/0 = %v, want 0 (skipped)", both)
	}
}

func TestEntropy(t *testing.T) {
	t.Parallel()

	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Errorf("Entropy(point mass) = %v, want 0", got)
	}
	got := Entropy([]float64{0.5, 0.5})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("Entropy(uniform 2) = %v, want ln 2", got)
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()

	out, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("Normalize = %v", out)
	}
	if _, err := Normalize([]float64{0, 0}); !errors.Is(err, ErrBadInput) {
		t.Error("zero vector accepted")
	}
	if _, err := Normalize([]float64{-1, 2}); !errors.Is(err, ErrBadInput) {
		t.Error("negative value accepted")
	}
}

func TestIsProbabilityVector(t *testing.T) {
	t.Parallel()

	if !IsProbabilityVector([]float64{0.3, 0.7}, 1e-9) {
		t.Error("valid vector rejected")
	}
	if IsProbabilityVector([]float64{0.3, 0.3}, 1e-9) {
		t.Error("non-normalized vector accepted")
	}
	if IsProbabilityVector([]float64{1.5, -0.5}, 1e-9) {
		t.Error("out-of-range entries accepted")
	}
}

func TestQuickSummaryMeanWithinRange(t *testing.T) {
	t.Parallel()

	f := func(raw []float64) bool {
		var s Summary
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue
			}
			s.Add(x)
			n++
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if n == 0 {
			return s.Count() == 0
		}
		return s.Count() == n && s.Mean() >= lo-1e-9*math.Abs(lo) && s.Mean() <= hi+1e-9*math.Abs(hi) && s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeSumsToOne(t *testing.T) {
	t.Parallel()

	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		positive := false
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				positive = true
			}
		}
		out, err := Normalize(xs)
		if !positive {
			return err != nil
		}
		if err != nil {
			return false
		}
		return IsProbabilityVector(out, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
