// Package stats provides the statistics substrate for the reproduction:
// streaming summaries, quantiles, histograms, confidence intervals, the
// Chernoff–Hoeffding bounds the paper's Theorem 4.1 relies on, simple
// linear regression (used to check growth rates of the coupling error),
// and divergences between probability vectors.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrNoData is returned when a statistic needs at least one sample.
	ErrNoData = errors.New("stats: no data")
	// ErrBadInput reports malformed arguments (mismatched lengths,
	// out-of-domain parameters).
	ErrBadInput = errors.New("stats: bad input")
)

// Summary accumulates a stream of observations using Welford's online
// algorithm, tracking count, mean, variance, min and max in O(1) space.
// The zero value is an empty summary ready for use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds other into the receiver (parallel reduction).
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n := float64(s.n + other.n)
	delta := other.mean - s.mean
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/n
	s.mean += delta * float64(other.n) / n
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns a normal-approximation 95% confidence interval for the
// mean. It returns ErrNoData on an empty summary.
func (s *Summary) CI95() (low, high float64, err error) {
	if s.n == 0 {
		return 0, 0, ErrNoData
	}
	const z = 1.959964
	half := z * s.StdErr()
	return s.mean - half, s.mean + half, nil
}

// Mean returns the arithmetic mean of xs, or ErrNoData when empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("%w: quantile q=%v", ErrBadInput, q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts observations into equal-width bins over [Low, High).
// Out-of-range observations accumulate in Under/Over.
type Histogram struct {
	Low, High float64
	Counts    []int
	Under     int
	Over      int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(low, high float64, bins int) (*Histogram, error) {
	if bins <= 0 || math.IsNaN(low) || math.IsNaN(high) || low >= high {
		return nil, fmt.Errorf("%w: histogram [%v,%v) bins=%d", ErrBadInput, low, high, bins)
	}
	return &Histogram{Low: low, High: high, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Low:
		h.Under++
	case x >= h.High:
		h.Over++
	default:
		idx := int(float64(len(h.Counts)) * (x - h.Low) / (h.High - h.Low))
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// ChernoffBound returns the two-sided Chernoff–Hoeffding tail bound of
// the paper's Theorem 4.1: for n independent Bernoulli variables with
// mean gamma, P[|mean − gamma| > gamma·delta] <= 2·exp(−n·gamma·delta²/3)
// for 0 < delta <= 1.
func ChernoffBound(n int, gamma, delta float64) (float64, error) {
	if n <= 0 || gamma <= 0 || gamma > 1 || delta <= 0 || delta > 1 {
		return 0, fmt.Errorf("%w: chernoff(n=%d, gamma=%v, delta=%v)", ErrBadInput, n, gamma, delta)
	}
	return 2 * math.Exp(-float64(n)*gamma*delta*delta/3), nil
}

// HoeffdingBound returns the two-sided Hoeffding bound for n bounded
// [0,1] variables: P[|mean − E| > eps] <= 2·exp(−2·n·eps²).
func HoeffdingBound(n int, eps float64) (float64, error) {
	if n <= 0 || eps <= 0 {
		return 0, fmt.Errorf("%w: hoeffding(n=%d, eps=%v)", ErrBadInput, n, eps)
	}
	return 2 * math.Exp(-2*float64(n)*eps*eps), nil
}

// LinearFit fits y = a + b·x by ordinary least squares and returns the
// intercept a, slope b and the coefficient of determination r².
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("%w: linear fit lengths %d vs %d", ErrBadInput, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrNoData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("%w: degenerate x values", ErrBadInput)
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}

// TotalVariation returns the total-variation distance between two
// probability vectors of equal length: (1/2)·Σ|p_i − q_i|.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: TV lengths %d vs %d", ErrBadInput, len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// KLDivergence returns D(p || q) in nats. Terms with p_i = 0 contribute
// zero; a positive p_i with q_i = 0 yields +Inf.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: KL lengths %d vs %d", ErrBadInput, len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		sum += p[i] * math.Log(p[i]/q[i])
	}
	return sum, nil
}

// MaxRatioDeviation returns max_i |p_i/q_i − 1| over indices with
// q_i > 0, the closeness measure of the paper's Lemma 4.5. Indices where
// q_i == 0 but p_i > 0 yield +Inf.
func MaxRatioDeviation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: ratio lengths %d vs %d", ErrBadInput, len(p), len(q))
	}
	maxDev := 0.0
	for i := range p {
		if q[i] == 0 {
			if p[i] > 0 {
				return math.Inf(1), nil
			}
			continue
		}
		dev := math.Abs(p[i]/q[i] - 1)
		if dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev, nil
}

// Entropy returns the Shannon entropy of a probability vector in nats.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// Normalize scales a non-negative vector to sum to one, returning a new
// slice. It returns ErrBadInput when the sum is not strictly positive.
func Normalize(xs []float64) ([]float64, error) {
	sum := 0.0
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("%w: normalize value %v", ErrBadInput, x)
		}
		sum += x
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("%w: normalize sum %v", ErrBadInput, sum)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out, nil
}

// IsProbabilityVector reports whether p is a valid probability vector to
// within tolerance tol.
func IsProbabilityVector(p []float64, tol float64) bool {
	sum := 0.0
	for _, x := range p {
		if math.IsNaN(x) || x < -tol || x > 1+tol {
			return false
		}
		sum += x
	}
	return math.Abs(sum-1) <= tol
}
