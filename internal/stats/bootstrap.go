package stats

import (
	"fmt"

	"repro/internal/rng"
)

// BootstrapCI returns a percentile-bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using
// resamples bootstrap replicates. It complements Summary.CI95 when the
// sampling distribution is skewed (e.g. hitting times), where the
// normal approximation is unreliable.
func BootstrapCI(xs []float64, confidence float64, resamples int, r *rng.RNG) (low, high float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoData
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("%w: confidence=%v", ErrBadInput, confidence)
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("%w: resamples=%d (need >= 10)", ErrBadInput, resamples)
	}
	if r == nil {
		return 0, 0, fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	n := len(xs)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[r.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	alpha := (1 - confidence) / 2
	low, err = Quantile(means, alpha)
	if err != nil {
		return 0, 0, err
	}
	high, err = Quantile(means, 1-alpha)
	if err != nil {
		return 0, 0, err
	}
	return low, high, nil
}
