package stats

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestBootstrapCIValidation(t *testing.T) {
	t.Parallel()

	r := rng.New(1)
	if _, _, err := BootstrapCI(nil, 0.95, 100, r); !errors.Is(err, ErrNoData) {
		t.Error("empty data accepted")
	}
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapCI(xs, 1.5, 100, r); !errors.Is(err, ErrBadInput) {
		t.Error("confidence > 1 accepted")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 5, r); !errors.Is(err, ErrBadInput) {
		t.Error("too few resamples accepted")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 100, nil); !errors.Is(err, ErrBadInput) {
		t.Error("nil rng accepted")
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	t.Parallel()

	r := rng.New(7)
	xs := make([]float64, 200)
	sum := 0.0
	for i := range xs {
		xs[i] = r.Float64() * 10
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	low, high, err := BootstrapCI(xs, 0.95, 2000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if low > mean || high < mean {
		t.Errorf("CI [%v, %v] does not bracket sample mean %v", low, high, mean)
	}
	if high <= low {
		t.Errorf("degenerate CI [%v, %v]", low, high)
	}
}

// TestBootstrapCICoverage: across many synthetic datasets, the 90% CI
// should contain the true mean roughly 90% of the time.
func TestBootstrapCICoverage(t *testing.T) {
	t.Parallel()

	const trials = 200
	const trueMean = 0.5
	r := rng.New(99)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 60)
		for i := range xs {
			if r.Bernoulli(trueMean) {
				xs[i] = 1
			}
		}
		low, high, err := BootstrapCI(xs, 0.9, 400, r)
		if err != nil {
			t.Fatal(err)
		}
		if low <= trueMean && trueMean <= high {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.8 || frac > 0.99 {
		t.Errorf("coverage %v, want ~0.9", frac)
	}
}

func TestBootstrapCIConstantData(t *testing.T) {
	t.Parallel()

	xs := []float64{4, 4, 4, 4}
	low, high, err := BootstrapCI(xs, 0.95, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if low != 4 || high != 4 {
		t.Errorf("constant data CI [%v, %v], want [4, 4]", low, high)
	}
}
