// Package faultinject provides deterministic, test-only fault hooks.
//
// Production code marks interesting seams — a disk read, a scheduler
// run path — with a single call:
//
//	if err := faultinject.Do(ctx, "store.disk.get"); err != nil { ... }
//
// With no faults armed the seam is one atomic load and no allocation,
// so the hooks are safe to leave compiled into production builds;
// there is no flag to turn them on outside a test. Tests arm a seam
// with Activate, which returns a restore func:
//
//	defer faultinject.Activate("store.disk.get", &faultinject.Fault{
//		Latency: 5 * time.Millisecond,
//	})()
//
// A Fault can add latency, return an error, or stall until a channel
// closes (or the caller's context is canceled), and can be limited to
// every Nth traversal for deterministic partial failures.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an armed seam is traversed.
// Fields compose: latency is applied first, then the stall, then the
// error. The zero Fault is a no-op.
type Fault struct {
	// Latency is added to every matching traversal.
	Latency time.Duration
	// Err, when non-nil, is returned from Do on matching traversals.
	Err error
	// Every limits the fault to every Nth traversal of the seam
	// (1-indexed: Every=3 fires on the 3rd, 6th, ... traversal).
	// Zero or one fires on every traversal. The counter is per
	// Activate call, so tests are deterministic.
	Every int
	// Stall, when non-nil, blocks the traversal until the channel is
	// closed or the caller's context is canceled (the context error
	// is returned in that case).
	Stall <-chan struct{}

	hits atomic.Uint64
}

var (
	// armed is the fast-path gate: seams pay one atomic load when no
	// fault is active anywhere in the process.
	armed atomic.Int32

	mu     sync.Mutex
	points map[string]*Fault
)

// Activate arms the named seam with f and returns a func that
// restores the previous state. Activating a seam that is already
// armed replaces the existing fault until restore.
func Activate(point string, f *Fault) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*Fault)
	}
	prev, hadPrev := points[point]
	points[point] = f
	if !hadPrev {
		armed.Add(1)
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if hadPrev {
			points[point] = prev
			return
		}
		delete(points, point)
		armed.Add(-1)
	}
}

// Do traverses the named seam. It returns nil immediately unless a
// test has armed the seam, in which case it applies the armed fault's
// latency/stall/error in that order.
func Do(ctx context.Context, point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f := points[point]
	mu.Unlock()
	if f == nil {
		return nil
	}
	if n := f.Every; n > 1 {
		if f.hits.Add(1)%uint64(n) != 0 {
			return nil
		}
	}
	if f.Latency > 0 {
		t := time.NewTimer(f.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Stall != nil {
		select {
		case <-f.Stall:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.Err
}
