package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestUnarmedSeamIsNoop(t *testing.T) {
	if err := Do(context.Background(), "never.armed"); err != nil {
		t.Fatalf("unarmed seam returned %v", err)
	}
}

func TestErrorAndRestore(t *testing.T) {
	boom := errors.New("boom")
	restore := Activate("t.err", &Fault{Err: boom})
	if err := Do(context.Background(), "t.err"); !errors.Is(err, boom) {
		t.Fatalf("armed seam returned %v, want boom", err)
	}
	if err := Do(context.Background(), "t.other"); err != nil {
		t.Fatalf("different seam returned %v while t.err armed", err)
	}
	restore()
	if err := Do(context.Background(), "t.err"); err != nil {
		t.Fatalf("restored seam returned %v", err)
	}
}

func TestEveryNthTraversal(t *testing.T) {
	boom := errors.New("boom")
	defer Activate("t.nth", &Fault{Err: boom, Every: 3})()
	var fired int
	for i := 0; i < 9; i++ {
		if Do(context.Background(), "t.nth") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Every=3 fired %d times in 9 traversals, want 3", fired)
	}
}

func TestLatency(t *testing.T) {
	defer Activate("t.lat", &Fault{Latency: 20 * time.Millisecond})()
	start := time.Now()
	if err := Do(context.Background(), "t.lat"); err != nil {
		t.Fatalf("latency fault returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency fault returned after %v, want >= ~20ms", d)
	}
}

func TestStallRespectsContext(t *testing.T) {
	stall := make(chan struct{})
	defer Activate("t.stall", &Fault{Stall: stall})()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := Do(ctx, "t.stall"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled seam returned %v, want deadline exceeded", err)
	}
	close(stall)
	if err := Do(context.Background(), "t.stall"); err != nil {
		t.Fatalf("released stall returned %v", err)
	}
}

func TestNestedActivateRestoresPrevious(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	r1 := Activate("t.nest", &Fault{Err: e1})
	r2 := Activate("t.nest", &Fault{Err: e2})
	if err := Do(context.Background(), "t.nest"); !errors.Is(err, e2) {
		t.Fatalf("inner fault: got %v", err)
	}
	r2()
	if err := Do(context.Background(), "t.nest"); !errors.Is(err, e1) {
		t.Fatalf("after inner restore: got %v", err)
	}
	r1()
	if err := Do(context.Background(), "t.nest"); err != nil {
		t.Fatalf("after outer restore: got %v", err)
	}
}
