package infinite

import (
	"fmt"
	"math"

	"repro/internal/env"
	"repro/internal/rng"
)

// BlockProcess advances a replication block of Process trajectories
// together in the v2 draw order: per-lane state stored
// structure-of-arrays (lane k's row of any lanes×m buffer is
// [k·m, (k+1)·m)), one independent rng stream per lane. Per lane and
// per step the draw sequence is the v1 sequence — the environment's m
// reward draws, then the deterministic multiplicative update — under
// v2 lane seeding (rng.StripeSeed instead of the v1 per-replication
// schedule), and the update normalizes by reciprocal multiply rather
// than per-element division. Both differences make v2 results distinct
// from v1 by design.
//
// Unlike Process, the block form does not track the log-potential
// ln Φ^t: reports never consume it, and eliding the per-step math.Log
// is part of the block path's speedup. Callers needing Φ (the
// theorem-proof diagnostics) use the per-trajectory Process.
type BlockProcess struct {
	lanes, m    int
	mu          float64
	alpha, beta float64
	environ     env.Environment
	striped     *rng.Striped

	// Hot-loop invariants, as in Process: V_j = keep·P_j + explore.
	keep    float64
	explore float64

	t       int
	p       []float64 // lanes×m distribution rows P^t
	initP   []float64 // per-lane template (length m), nil = uniform
	rewards []float64 // lanes×m latest rewards
	scratch []float64 // scratch: one lane's unnormalized update

	groupRew  []float64 // per lane
	cumReward []float64 // per lane
}

// NewBlock validates the config and builds a block of lanes
// replications seeded at global lane lane0 from c.Seed.
// TrackRawWeights is not supported in block form (it exists only for
// the numerical-stability ablation, which is per-trajectory).
func NewBlock(c Config, lane0, lanes int) (*BlockProcess, error) {
	if lane0 < 0 || lanes <= 0 {
		return nil, fmt.Errorf("%w: block of %d lanes at lane %d", ErrBadConfig, lanes, lane0)
	}
	if c.TrackRawWeights {
		return nil, fmt.Errorf("%w: raw-weight tracking is per-trajectory only", ErrBadConfig)
	}
	if math.IsNaN(c.Mu) || c.Mu < 0 || c.Mu > 1 {
		return nil, fmt.Errorf("%w: mu=%v", ErrBadConfig, c.Mu)
	}
	if c.Rule == nil {
		return nil, fmt.Errorf("%w: nil rule", ErrBadConfig)
	}
	if c.Env == nil {
		return nil, fmt.Errorf("%w: nil environment", ErrBadConfig)
	}
	m := c.Env.Options()
	if m <= 0 {
		return nil, fmt.Errorf("%w: environment has %d options", ErrBadConfig, m)
	}
	var initP []float64
	if c.InitialP != nil {
		if len(c.InitialP) != m {
			return nil, fmt.Errorf("%w: initial P length %d, want %d", ErrBadConfig, len(c.InitialP), m)
		}
		sum := 0.0
		for j, v := range c.InitialP {
			if math.IsNaN(v) || v < 0 {
				return nil, fmt.Errorf("%w: initial P[%d]=%v", ErrBadConfig, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("%w: initial P sums to %v", ErrBadConfig, sum)
		}
		initP = make([]float64, m)
		copy(initP, c.InitialP)
	}
	b := &BlockProcess{
		lanes:     lanes,
		m:         m,
		mu:        c.Mu,
		alpha:     c.Rule.Alpha(),
		beta:      c.Rule.Beta(),
		environ:   c.Env,
		striped:   rng.NewStriped(c.Seed, lane0, lanes),
		keep:      1 - c.Mu,
		explore:   c.Mu / float64(m),
		p:         make([]float64, lanes*m),
		initP:     initP,
		rewards:   make([]float64, lanes*m),
		scratch:   make([]float64, m),
		groupRew:  make([]float64, lanes),
		cumReward: make([]float64, lanes),
	}
	b.resetRows()
	return b, nil
}

func (b *BlockProcess) resetRows() {
	b.t = 0
	for i := range b.rewards {
		b.rewards[i] = 0
	}
	for k := 0; k < b.lanes; k++ {
		row := b.p[k*b.m : (k+1)*b.m]
		if b.initP != nil {
			copy(row, b.initP)
		} else {
			for j := range row {
				row[j] = 1 / float64(b.m)
			}
		}
	}
	for k := range b.groupRew {
		b.groupRew[k] = 0
		b.cumReward[k] = 0
	}
}

// Reset reinitializes the block in place to the state NewBlock would
// produce for (seed, lane0), reusing all buffers. The environment is
// not reset — stateless environments only, as with Process.Reset.
func (b *BlockProcess) Reset(seed uint64, lane0 int) {
	b.striped.Reseed(seed, lane0)
	b.resetRows()
}

// T returns the number of completed steps.
func (b *BlockProcess) T() int { return b.t }

// Options returns the number of options m.
func (b *BlockProcess) Options() int { return b.m }

// Lanes returns the number of replication lanes advanced per step.
func (b *BlockProcess) Lanes() int { return b.lanes }

// GroupReward returns lane's latest-step Σ_j P^{t−1}_j R^t_j.
func (b *BlockProcess) GroupReward(lane int) float64 { return b.groupRew[lane] }

// CumulativeGroupReward returns lane's reward summed over all steps.
func (b *BlockProcess) CumulativeGroupReward(lane int) float64 { return b.cumReward[lane] }

// AppendDistribution appends lane's P^t row to dst and returns it.
func (b *BlockProcess) AppendDistribution(lane int, dst []float64) []float64 {
	row := lane * b.m
	return append(dst, b.p[row:row+b.m]...)
}

// StepBlock advances every lane one time step.
func (b *BlockProcess) StepBlock() error {
	for k := 0; k < b.lanes; k++ {
		r := b.striped.Lane(k)
		row := k * b.m
		rew := b.rewards[row : row+b.m]
		if err := b.environ.Step(r, rew); err != nil {
			return fmt.Errorf("infinite: environment step: %w", err)
		}
		p := b.p[row : row+b.m]
		// One fused pass over the options: reward accounting and the
		// Process.applyUpdate arithmetic (minus the log-potential),
		// then a reciprocal-multiply normalization — one division per
		// lane-step instead of m. The reciprocal changes low-order bits
		// relative to per-element division; that is v2-contract
		// arithmetic, pinned by the v2 golden fixtures.
		g := 0.0
		total := 0.0
		for j, x := range rew {
			pj := p[j]
			g += pj * x
			factor := b.alpha
			if x >= 1 {
				factor = b.beta
			}
			v := (b.keep*pj + b.explore) * factor
			b.scratch[j] = v
			total += v
		}
		b.groupRew[k] = g
		b.cumReward[k] += g
		if total > 0 {
			inv := 1 / total
			for j := range p {
				p[j] = b.scratch[j] * inv
			}
		}
		// total == 0 (α = 0, all rewards bad) keeps the previous
		// distribution, mirroring Process.
	}
	b.t++
	return nil
}
