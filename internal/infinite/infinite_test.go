package infinite

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/stats"
)

func mustRule(t *testing.T, beta float64) agent.Linear {
	t.Helper()
	r, err := agent.NewSymmetric(beta)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustEnv(t *testing.T, qualities ...float64) env.Environment {
	t.Helper()
	e, err := env.NewIIDBernoulli(qualities)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func baseConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Mu:   0.02,
		Rule: mustRule(t, 0.7),
		Env:  mustEnv(t, 0.9, 0.3),
		Seed: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative mu", mutate: func(c *Config) { c.Mu = -0.1 }},
		{name: "mu above one", mutate: func(c *Config) { c.Mu = 2 }},
		{name: "nil rule", mutate: func(c *Config) { c.Rule = nil }},
		{name: "nil env", mutate: func(c *Config) { c.Env = nil }},
		{name: "short initial P", mutate: func(c *Config) { c.InitialP = []float64{1} }},
		{name: "non-normalized initial P", mutate: func(c *Config) { c.InitialP = []float64{0.5, 0.6} }},
		{name: "negative initial P", mutate: func(c *Config) { c.InitialP = []float64{1.5, -0.5} }},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			c := baseConfig(t)
			tt.mutate(&c)
			if _, err := New(c); !errors.Is(err, ErrBadConfig) {
				t.Errorf("want ErrBadConfig, got %v", err)
			}
		})
	}
}

func TestInitialState(t *testing.T) {
	t.Parallel()

	p, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Distribution(); got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("P^0 = %v, want uniform", got)
	}
	if got := p.LogPotential(); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("ln Phi^0 = %v, want ln 2", got)
	}
	if p.T() != 0 {
		t.Errorf("T = %d", p.T())
	}
}

func TestInitialPRespected(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.InitialP = []float64{0.9, 0.1}
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Distribution(); got[0] != 0.9 {
		t.Errorf("P^0 = %v", got)
	}
}

// TestDeterministicUpdate verifies the exact update equation on a
// scripted reward sequence, checked against hand-computed values.
func TestDeterministicUpdate(t *testing.T) {
	t.Parallel()

	script, err := env.NewScripted([][]float64{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	const mu, beta = 0.1, 0.7
	rule, err := agent.NewSymmetric(beta)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Mu: mu, Rule: rule, Env: script, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	// V_1 = (0.9*0.5 + 0.05) * 0.7 = 0.5*0.7 = 0.35
	// V_2 = (0.9*0.5 + 0.05) * 0.3 = 0.15
	// P^1 = (0.7, 0.3).
	got := p.Distribution()
	if math.Abs(got[0]-0.7) > 1e-12 || math.Abs(got[1]-0.3) > 1e-12 {
		t.Errorf("P^1 = %v, want (0.7, 0.3)", got)
	}
	// Phi^1 = Phi^0 * (0.35+0.15) = 2*0.5 = 1.
	if lp := p.LogPotential(); math.Abs(lp) > 1e-12 {
		t.Errorf("ln Phi^1 = %v, want 0", lp)
	}
	// Group reward uses P^0: 0.5*1 + 0.5*0 = 0.5.
	if g := p.GroupReward(); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("group reward = %v, want 0.5", g)
	}
}

func TestStepWithRewardsMatchesScriptedEnv(t *testing.T) {
	t.Parallel()

	rewards := [][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}, {1, 0}}
	script, err := env.NewScripted(rewards)
	if err != nil {
		t.Fatal(err)
	}
	c := baseConfig(t)
	c.Env = script
	viaEnv, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	viaRewards, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rewards); i++ {
		if err := viaEnv.Step(); err != nil {
			t.Fatal(err)
		}
		if err := viaRewards.StepWithRewards(rewards[i]); err != nil {
			t.Fatal(err)
		}
		a, b := viaEnv.Distribution(), viaRewards.Distribution()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("step %d: %v vs %v", i, a, b)
			}
		}
	}
	if err := viaRewards.StepWithRewards([]float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Error("wrong reward length accepted")
	}
}

func TestDistributionStaysNormalized(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Env = mustEnv(t, 0.8, 0.5, 0.2, 0.1)
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		if !stats.IsProbabilityVector(p.Distribution(), 1e-9) {
			t.Fatalf("step %d: P = %v", i, p.Distribution())
		}
	}
}

func TestMinMassHolds(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.Mu = 0.05
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	bound := p.MinMass()
	if bound <= 0 {
		t.Fatalf("MinMass = %v, want positive", bound)
	}
	for i := 0; i < 2000; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		for j, v := range p.Distribution() {
			if v < bound-1e-12 {
				t.Fatalf("step %d: P[%d]=%v below bound %v", i, j, v, bound)
			}
		}
	}
}

func TestConvergesToBestOption(t *testing.T) {
	t.Parallel()

	c := Config{
		Mu:   0.01,
		Rule: mustRule(t, 0.7),
		Env:  mustEnv(t, 0.9, 0.2, 0.2, 0.2),
		Seed: 3,
	}
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	const window = 300
	for i := 0; i < window; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		sum += p.Distribution()[0]
	}
	if avg := sum / window; avg < 0.8 {
		t.Errorf("average P_1 = %v, want > 0.8", avg)
	}
}

// TestRegretBoundTheorem43 is the core quantitative check: the measured
// regret must be below the paper's 3δ bound for T >= ln m / δ².
func TestRegretBoundTheorem43(t *testing.T) {
	t.Parallel()

	for _, beta := range []float64{0.6, 0.65, 0.7} {
		beta := beta
		t.Run("", func(t *testing.T) {
			t.Parallel()
			delta := math.Log(beta / (1 - beta))
			mu := delta * delta / 6
			if mu > 1 {
				mu = 1
			}
			qualities := []float64{0.9, 0.4, 0.4, 0.4, 0.4}
			horizon := int(math.Ceil(math.Log(float64(len(qualities))) / (delta * delta)))
			if horizon < 1 {
				horizon = 1
			}
			rule, err := agent.NewSymmetric(beta)
			if err != nil {
				t.Fatal(err)
			}
			// Average over replications to estimate the expected regret.
			var regrets stats.Summary
			for rep := 0; rep < 40; rep++ {
				environ, err := env.NewIIDBernoulli(qualities)
				if err != nil {
					t.Fatal(err)
				}
				p, err := New(Config{Mu: mu, Rule: rule, Env: environ, Seed: uint64(100 + rep)})
				if err != nil {
					t.Fatal(err)
				}
				avg, err := Run(p, horizon)
				if err != nil {
					t.Fatal(err)
				}
				regrets.Add(0.9 - avg)
			}
			if got, bound := regrets.Mean(), 3*delta; got > bound {
				t.Errorf("beta=%v: regret %v exceeds 3*delta=%v", beta, got, bound)
			}
		})
	}
}

func TestRawWeightsUnderflow(t *testing.T) {
	t.Parallel()

	c := baseConfig(t)
	c.TrackRawWeights = true
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if w := p.RawWeights(); w == nil || w[0] != 1 {
		t.Fatalf("initial raw weights = %v", w)
	}
	// Raw weights shrink by at least beta each step: after 5000 steps
	// they are below 0.7^5000 ~ 10^-774, i.e. exactly zero in float64,
	// while the normalized distribution stays healthy.
	for i := 0; i < 5000; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range p.RawWeights() {
		if w != 0 {
			t.Fatalf("raw weight %v did not underflow", w)
		}
	}
	if !stats.IsProbabilityVector(p.Distribution(), 1e-9) {
		t.Error("normalized distribution corrupted")
	}
	if math.IsInf(p.LogPotential(), 0) || math.IsNaN(p.LogPotential()) {
		t.Errorf("log potential degenerate: %v", p.LogPotential())
	}
}

func TestRawWeightsNilWhenUntracked(t *testing.T) {
	t.Parallel()

	p, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.RawWeights() != nil {
		t.Error("RawWeights non-nil without tracking")
	}
}

func TestAllBadRewardsWithAlphaZero(t *testing.T) {
	t.Parallel()

	// alpha=0 and an all-bad reward step would zero every weight; the
	// process must keep its previous distribution.
	rule, err := agent.NewLinear(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	script, err := env.NewScripted([][]float64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Mu: 0.1, Rule: rule, Env: script, InitialP: []float64{0.8, 0.2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	if got := p.Distribution(); got[0] != 0.8 || got[1] != 0.2 {
		t.Errorf("P after degenerate step = %v, want unchanged", got)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	if _, err := Run(nil, 5); !errors.Is(err, ErrBadConfig) {
		t.Error("nil process accepted")
	}
	p, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("zero steps accepted")
	}
}

// TestPotentialInequality checks the key inequality of the Theorem 4.3
// proof on random reward sequences:
//
//	ln Phi^T >= T ln(1−β) + T ln(1−µ) + δ·Σ_t R^t_1.
func TestPotentialInequality(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, betaRaw, muRaw uint8) bool {
		beta := 0.55 + 0.15*float64(betaRaw)/255
		delta := math.Log(beta / (1 - beta))
		mu := 0.2 * float64(muRaw) / 255
		rule, err := agent.NewSymmetric(beta)
		if err != nil {
			return false
		}
		environ, err := env.NewIIDBernoulli([]float64{0.8, 0.5, 0.3})
		if err != nil {
			return false
		}
		rec, err := env.NewRecorder(environ)
		if err != nil {
			return false
		}
		p, err := New(Config{Mu: mu, Rule: rule, Env: rec, Seed: seed})
		if err != nil {
			return false
		}
		const T = 50
		for i := 0; i < T; i++ {
			if err := p.Step(); err != nil {
				return false
			}
		}
		sumR1 := 0.0
		for _, row := range rec.History() {
			sumR1 += row[0]
		}
		lower := float64(T)*math.Log(1-beta) + float64(T)*math.Log(1-mu) + delta*sumR1
		return p.LogPotential() >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStep(b *testing.B) {
	rule, err := agent.NewSymmetric(0.7)
	if err != nil {
		b.Fatal(err)
	}
	environ, err := env.NewIIDBernoulli([]float64{0.9, 0.5, 0.3, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(Config{Mu: 0.02, Rule: rule, Env: environ, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLogSpace compares the default normalized update with
// the raw-weight tracking variant (the design choice called out in
// DESIGN.md).
func BenchmarkAblationLogSpace(b *testing.B) {
	for _, track := range []bool{false, true} {
		name := "normalized"
		if track {
			name = "with-raw-weights"
		}
		b.Run(name, func(b *testing.B) {
			rule, err := agent.NewSymmetric(0.7)
			if err != nil {
				b.Fatal(err)
			}
			environ, err := env.NewIIDBernoulli([]float64{0.9, 0.5, 0.3, 0.2})
			if err != nil {
				b.Fatal(err)
			}
			p, err := New(Config{Mu: 0.02, Rule: rule, Env: environ, Seed: 1, TrackRawWeights: track})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
