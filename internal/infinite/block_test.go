package infinite

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func blockTestConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Mu:   0.05,
		Rule: mustRule(t, 0.7),
		Env:  mustEnv(t, 0.9, 0.5, 0.4),
		Seed: 42,
	}
}

// TestBlockLaneMatchesStripeSeededProcess pins the infinite v2 draw
// order: lane k of a block consumes exactly the draws of a
// per-trajectory Process seeded with rng.StripeSeed(seed, k) — the
// environment's m reward draws per step, in the same order. The block
// normalizes by reciprocal multiply where Process divides per element,
// so values agree only to within accumulated rounding (a draw-order bug
// would diverge by orders of magnitude more than the tolerance here);
// exact v2 bits are pinned by the top-level golden fixtures.
func TestBlockLaneMatchesStripeSeededProcess(t *testing.T) {
	t.Parallel()
	cfg := blockTestConfig(t)
	const steps, lane0, lanes = 80, 2, 5

	b, err := NewBlock(cfg, lane0, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := b.StepBlock(); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < lanes; k++ {
		pcfg := cfg
		pcfg.Seed = rng.StripeSeed(cfg.Seed, lane0+k)
		p, err := New(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if err := p.Step(); err != nil {
				t.Fatal(err)
			}
		}
		const tol = 1e-9
		if g, w := b.CumulativeGroupReward(k), p.CumulativeGroupReward(); math.Abs(g-w) > tol*math.Max(1, math.Abs(w)) {
			t.Fatalf("lane %d cumulative reward %v, process %v", k, g, w)
		}
		got := b.AppendDistribution(k, nil)
		want := p.Distribution()
		for j := range want {
			if math.Abs(got[j]-want[j]) > tol {
				t.Fatalf("lane %d P[%d] = %v, process %v", k, j, got[j], want[j])
			}
		}
	}
}

func TestBlockResetReplays(t *testing.T) {
	t.Parallel()
	cfg := blockTestConfig(t)
	const steps, lane0, lanes = 50, 1, 4
	b, err := NewBlock(cfg, lane0, lanes)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (pops [][]float64, cums []float64) {
		for s := 0; s < steps; s++ {
			if err := b.StepBlock(); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < lanes; k++ {
			pops = append(pops, b.AppendDistribution(k, nil))
			cums = append(cums, b.CumulativeGroupReward(k))
		}
		return pops, cums
	}
	wantPops, wantCums := run()
	b.Reset(cfg.Seed, lane0)
	if b.T() != 0 {
		t.Fatal("Reset did not zero the step counter")
	}
	gotPops, gotCums := run()
	for k := 0; k < lanes; k++ {
		if math.Float64bits(wantCums[k]) != math.Float64bits(gotCums[k]) {
			t.Fatalf("lane %d cumulative reward after reset: %v, want %v", k, gotCums[k], wantCums[k])
		}
		for j := range wantPops[k] {
			if math.Float64bits(wantPops[k][j]) != math.Float64bits(gotPops[k][j]) {
				t.Fatalf("lane %d P[%d] after reset: %v, want %v", k, j, gotPops[k][j], wantPops[k][j])
			}
		}
	}
}

func TestNewBlockRejectsBadConfigs(t *testing.T) {
	t.Parallel()
	good := blockTestConfig(t)
	if _, err := NewBlock(good, -1, 2); err == nil {
		t.Fatal("expected error for negative lane0")
	}
	if _, err := NewBlock(good, 0, 0); err == nil {
		t.Fatal("expected error for zero lanes")
	}
	raw := good
	raw.TrackRawWeights = true
	if _, err := NewBlock(raw, 0, 2); err == nil {
		t.Fatal("expected error for raw-weight tracking in block form")
	}
	bad := good
	bad.Mu = -0.5
	if _, err := NewBlock(bad, 0, 2); err == nil {
		t.Fatal("expected error for bad mu")
	}
}
