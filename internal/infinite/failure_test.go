package infinite

import (
	"errors"
	"testing"

	"repro/internal/env"
)

func TestEnvironmentFailurePropagates(t *testing.T) {
	t.Parallel()

	inner := mustEnv(t, 0.9, 0.3)
	faulty, err := env.NewFaulty(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := baseConfig(t)
	c.Env = faulty
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Step(); err != nil {
			t.Fatalf("step %d failed early: %v", i+1, err)
		}
	}
	if err := p.Step(); !errors.Is(err, env.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if p.T() != 2 {
		t.Errorf("T advanced through failure: %d", p.T())
	}
	if _, err := Run(p, 5); !errors.Is(err, env.ErrInjected) {
		t.Error("Run swallowed the failure")
	}
}
