// Package infinite implements the paper's infinite-population
// distributed learning dynamics (Section 4.2), equivalently the
// stochastic multiplicative-weights process
//
//	W^{t+1}_j = ((1−µ)W^t_j + (µ/m)·Σ_k W^t_k) · β^{R^{t+1}_j}(1−β)^{1−R^{t+1}_j},
//	P^t_j     = W^t_j / Σ_k W^t_k,
//
// with W^0_j = 1. Once the rewards R^t are fixed, the process is fully
// deterministic — the only randomness lives in the environment. That is
// exactly what makes the Lemma 4.5 coupling possible: the finite
// population records its realized rewards, and this process replays
// them.
//
// The implementation keeps the normalized distribution P and the
// log-potential ln Φ^t = ln Σ_j W^t_j instead of the raw weights. Raw
// linear-space weights shrink by a factor ≤ β < 1 every step and
// underflow to zero after a few thousand steps; the normalized form is
// exact for P and keeps Φ available (in log space) for the potential
// argument of the Theorem 4.3 proof. The raw linear-space weights can be
// tracked optionally to demonstrate the failure mode (see the log-space
// ablation bench).
package infinite

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/env"
	"repro/internal/rng"
)

// ErrBadConfig reports an invalid process configuration.
var ErrBadConfig = errors.New("infinite: invalid config")

// Config parameterizes the process.
type Config struct {
	// Mu is the exploration probability µ ∈ [0, 1].
	Mu float64
	// Rule supplies the adoption probabilities (β on good signals, α on
	// bad ones). The paper's analysis uses α = 1−β.
	Rule agent.Rule
	// Env generates the per-step quality signals.
	Env env.Environment
	// InitialP optionally sets P^0 (a probability vector of length m).
	// When nil the process starts uniform, matching W^0_j = 1.
	InitialP []float64
	// Seed drives the environment's randomness.
	Seed uint64
	// TrackRawWeights additionally maintains unnormalized linear-space
	// weights, which underflow over long horizons; used only by the
	// numerical-stability ablation.
	TrackRawWeights bool
}

// Process is the stochastic MWU dynamics. Create with New.
type Process struct {
	m       int
	mu      float64
	alpha   float64
	beta    float64
	environ env.Environment
	r       *rng.RNG

	// Hot-loop invariants, hoisted out of the per-option update:
	// keep = 1−µ and explore = µ/m, so V_j = keep·P_j + explore.
	keep    float64
	explore float64

	t       int
	p       []float64
	initP   []float64 // copy of Config.InitialP (nil = uniform start)
	logPhi  float64
	rewards []float64
	scratch []float64

	groupRew  float64
	cumReward float64

	rawW []float64 // nil unless TrackRawWeights
}

// New validates the config and returns a fresh process.
func New(c Config) (*Process, error) {
	if math.IsNaN(c.Mu) || c.Mu < 0 || c.Mu > 1 {
		return nil, fmt.Errorf("%w: mu=%v", ErrBadConfig, c.Mu)
	}
	if c.Rule == nil {
		return nil, fmt.Errorf("%w: nil rule", ErrBadConfig)
	}
	if c.Env == nil {
		return nil, fmt.Errorf("%w: nil environment", ErrBadConfig)
	}
	m := c.Env.Options()
	if m <= 0 {
		return nil, fmt.Errorf("%w: environment has %d options", ErrBadConfig, m)
	}
	var initP []float64
	if c.InitialP != nil {
		if len(c.InitialP) != m {
			return nil, fmt.Errorf("%w: initial P length %d, want %d", ErrBadConfig, len(c.InitialP), m)
		}
		sum := 0.0
		for j, v := range c.InitialP {
			if math.IsNaN(v) || v < 0 {
				return nil, fmt.Errorf("%w: initial P[%d]=%v", ErrBadConfig, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("%w: initial P sums to %v", ErrBadConfig, sum)
		}
		initP = make([]float64, m)
		copy(initP, c.InitialP)
	}
	proc := &Process{
		m:       m,
		mu:      c.Mu,
		alpha:   c.Rule.Alpha(),
		beta:    c.Rule.Beta(),
		environ: c.Env,
		r:       rng.New(c.Seed),
		keep:    1 - c.Mu,
		explore: c.Mu / float64(m),
		p:       make([]float64, m),
		initP:   initP,
		rewards: make([]float64, m),
		scratch: make([]float64, m),
	}
	if c.TrackRawWeights {
		proc.rawW = make([]float64, m)
	}
	proc.resetState()
	return proc, nil
}

// resetState installs the t = 0 state (shared by New and Reset).
func (p *Process) resetState() {
	p.t = 0
	p.groupRew = 0
	p.cumReward = 0
	p.logPhi = math.Log(float64(p.m)) // Φ^0 = m when W^0_j = 1
	for j := range p.rewards {
		p.rewards[j] = 0
	}
	if p.initP != nil {
		copy(p.p, p.initP)
	} else {
		for j := range p.p {
			p.p[j] = 1 / float64(p.m)
		}
	}
	if p.rawW != nil {
		for j := range p.rawW {
			p.rawW[j] = 1
		}
	}
}

// Reset reinitializes the process in place to the state New would
// produce with the same config and the given seed, reusing all buffers:
// a reset process replays a fresh process bit for bit. The environment
// is NOT reset — only processes driven by stateless environments (the
// IID Bernoulli default) may be reset.
func (p *Process) Reset(seed uint64) {
	p.r.Reseed(seed)
	p.resetState()
}

// T returns the number of completed steps.
func (p *Process) T() int { return p.t }

// Options returns the number of options m.
func (p *Process) Options() int { return p.m }

// Distribution returns a copy of P^t.
func (p *Process) Distribution() []float64 {
	return p.AppendDistribution(make([]float64, 0, p.m))
}

// AppendDistribution appends P^t to dst and returns it, allocating only
// when dst lacks capacity — the no-copy accessor for per-step internal
// callers.
func (p *Process) AppendDistribution(dst []float64) []float64 { return append(dst, p.p...) }

// LastRewards returns a copy of the latest reward vector.
func (p *Process) LastRewards() []float64 {
	return p.AppendLastRewards(make([]float64, 0, p.m))
}

// AppendLastRewards appends R^t to dst and returns it (see
// AppendDistribution).
func (p *Process) AppendLastRewards(dst []float64) []float64 { return append(dst, p.rewards...) }

// LogPotential returns ln Φ^t, the log of the total weight.
func (p *Process) LogPotential() float64 { return p.logPhi }

// GroupReward returns the latest step's Σ_j P^{t−1}_j R^t_j.
func (p *Process) GroupReward() float64 { return p.groupRew }

// CumulativeGroupReward returns Σ_{s≤t} Σ_j P^{s−1}_j R^s_j.
func (p *Process) CumulativeGroupReward() float64 { return p.cumReward }

// RawWeights returns a copy of the unnormalized linear-space weights, or
// nil if TrackRawWeights was not set.
func (p *Process) RawWeights() []float64 {
	if p.rawW == nil {
		return nil
	}
	out := make([]float64, p.m)
	copy(out, p.rawW)
	return out
}

// Step draws the next reward vector from the environment and applies the
// multiplicative update.
func (p *Process) Step() error {
	if err := p.environ.Step(p.r, p.rewards); err != nil {
		return fmt.Errorf("infinite: environment step: %w", err)
	}
	p.applyUpdate()
	return nil
}

// StepWithRewards applies the update against an externally supplied
// reward vector (the coupling construction).
func (p *Process) StepWithRewards(rewards []float64) error {
	if len(rewards) != p.m {
		return fmt.Errorf("%w: rewards length %d, want %d", ErrBadConfig, len(rewards), p.m)
	}
	copy(p.rewards, rewards)
	p.applyUpdate()
	return nil
}

func (p *Process) applyUpdate() {
	// Group reward uses P^{t−1}.
	g := 0.0
	for j, rew := range p.rewards {
		g += p.p[j] * rew
	}
	p.groupRew = g
	p.cumReward += g

	// V_j = (1−µ)P_j + µ/m, then multiply by the adoption factor.
	// keep/explore are the hoisted invariants; the arithmetic (and so
	// every emitted bit) is unchanged.
	total := 0.0
	for j := range p.p {
		factor := p.alpha
		if p.rewards[j] >= 1 {
			factor = p.beta
		}
		v := (p.keep*p.p[j] + p.explore) * factor
		p.scratch[j] = v
		total += v
	}
	// Φ^{t+1} = Φ^t · Σ_j ((1−µ)P_j + µ/m)·factor_j.
	if total > 0 {
		p.logPhi += math.Log(total)
		for j := range p.p {
			p.p[j] = p.scratch[j] / total
		}
	}
	// total == 0 can only happen when α = 0 and every reward is bad; we
	// keep the previous distribution, mirroring the finite engine's
	// nobody-committed fallback.

	if p.rawW != nil {
		sum := 0.0
		for _, w := range p.rawW {
			sum += w
		}
		for j := range p.rawW {
			factor := p.alpha
			if p.rewards[j] >= 1 {
				factor = p.beta
			}
			p.rawW[j] = (p.keep*p.rawW[j] + p.explore*sum) * factor
		}
	}
	p.t++
}

// MinMass returns the analytic lower bound on every coordinate of P^t
// for t ≥ 1: P_j ≥ (µ/m)·α / β (the worst case is a bad signal for j
// and good signals everywhere else). It is 0 when α = 0 or µ = 0.
func (p *Process) MinMass() float64 {
	if p.beta == 0 {
		return 0
	}
	return p.mu / float64(p.m) * p.alpha / p.beta
}

// Run advances the process steps times and returns the time-averaged
// group reward over those steps.
func Run(p *Process, steps int) (avgGroupReward float64, err error) {
	if p == nil || steps <= 0 {
		return 0, fmt.Errorf("%w: run steps=%d", ErrBadConfig, steps)
	}
	before := p.cumReward
	for i := 0; i < steps; i++ {
		if err := p.Step(); err != nil {
			return 0, err
		}
	}
	return (p.cumReward - before) / float64(steps), nil
}
