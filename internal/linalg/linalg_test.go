package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewMatrixValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewMatrix(0, 3); !errors.Is(err, ErrShape) {
		t.Error("0 rows accepted")
	}
	if _, err := NewMatrix(3, -1); !errors.Is(err, ErrShape) {
		t.Error("negative cols accepted")
	}
}

func TestSetAtAdd(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Error("dimensions wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 1)
	cp := m.Clone()
	cp.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// [1 2 3; 4 5 6] * [1 1 1] = [6 15]
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	out, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 || out[1] != 15 {
		t.Errorf("MulVec = %v", out)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Error("short vector accepted")
	}
}

func TestVecMul(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// P = [0.9 0.1; 0.2 0.8]; [1 0] P = first row.
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.2)
	m.Set(1, 1, 0.8)
	out, err := m.VecMul([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.9 || out[1] != 0.1 {
		t.Errorf("VecMul = %v", out)
	}
	if _, err := m.VecMul([]float64{1, 0, 0}); !errors.Is(err, ErrShape) {
		t.Error("long vector accepted")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// x + 2y + z = 8; 3y + z = 10; 2x + z = 3  ->  x=1, y=3, z=1.
	rows := [][]float64{{1, 2, 1}, {0, 3, 1}, {2, 0, 1}}
	for i, row := range rows {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	x, err := Solve(m, []float64{8, 10, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Zero on the leading diagonal forces a row swap.
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := Solve(m, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Solve(m, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Error("singular system solved")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(m, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Error("non-square accepted")
	}
	sq, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(sq, []float64{1}); !errors.Is(err, ErrShape) {
		t.Error("short rhs accepted")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	t.Parallel()

	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	b := []float64{4, 6}
	if _, err := Solve(m, b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 || b[0] != 4 || b[1] != 6 {
		t.Error("Solve mutated its inputs")
	}
}

func TestIdentityAndSub(t *testing.T) {
	t.Parallel()

	id, err := Identity(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := id.MulVec([]float64{7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[1] != 8 || out[2] != 9 {
		t.Errorf("identity MulVec = %v", out)
	}
	diff, err := Sub(id, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if diff.At(i, j) != 0 {
				t.Fatal("I - I not zero")
			}
		}
	}
	other, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sub(id, other); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch accepted")
	}
}

// TestQuickSolveResidual: Solve on random diagonally dominant systems
// produces tiny residuals.
func TestQuickSolveResidual(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rng.New(seed)
		m, err := NewMatrix(n, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := 2*r.Float64() - 1
				m.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			m.Set(i, i, rowSum+1+r.Float64()) // diagonally dominant => nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 10 * (2*r.Float64() - 1)
		}
		x, err := Solve(m, b)
		if err != nil {
			return false
		}
		res, err := MaxAbsResidual(m, x, b)
		return err == nil && res < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve100(b *testing.B) {
	const n = 100
	r := rng.New(1)
	m, err := NewMatrix(n, n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64())
		}
		m.Add(i, i, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
