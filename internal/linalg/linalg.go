// Package linalg provides the small dense linear-algebra substrate used
// by the exact Markov-chain analysis (internal/markov): dense matrices,
// LU-style Gaussian elimination with partial pivoting for linear
// systems, and matrix-vector products. Go's standard library has no
// numerical linear algebra; the solvers here are written for the sizes
// the analysis needs (hundreds of states), favoring clarity and
// numerical robustness over asymptotics.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

var (
	// ErrShape reports dimension mismatches.
	ErrShape = errors.New("linalg: shape mismatch")
	// ErrSingular reports an (effectively) singular system.
	ErrSingular = errors.New("linalg: singular matrix")
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(cp.data, m.data)
	return cp
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: %dx%d times vector of %d", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out, nil
}

// VecMul returns xᵀ·m (left multiplication), used for distribution
// evolution xᵀP of a Markov chain.
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("%w: vector of %d times %dx%d", ErrShape, len(x), m.rows, m.cols)
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out, nil
}

// Solve solves m·x = b by Gaussian elimination with partial pivoting.
// m must be square; m and b are not modified.
func Solve(m *Matrix, b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: solve on %dx%d", ErrShape, m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("%w: rhs length %d for n=%d", ErrShape, len(b), m.rows)
	}
	n := m.rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("%w: pivot %e at column %d", ErrSingular, best, col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vp, vc := a.At(pivot, j), a.At(col, j)
				a.Set(pivot, j, vc)
				a.Set(col, j, vp)
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		// Eliminate below.
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := a.At(r, col) * inv
			if factor == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -factor*a.At(col, j))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= a.At(i, j) * x[j]
		}
		x[i] = sum / a.At(i, i)
	}
	return x, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Sub returns a − b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d minus %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// MaxAbsResidual returns max_i |(m·x − b)_i|, for verifying solutions.
func MaxAbsResidual(m *Matrix, x, b []float64) (float64, error) {
	mx, err := m.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(mx) {
		return 0, fmt.Errorf("%w: rhs length %d", ErrShape, len(b))
	}
	worst := 0.0
	for i := range mx {
		if d := math.Abs(mx[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}
