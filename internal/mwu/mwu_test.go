package mwu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/env"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNewHedgeValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewHedge(0, 0.1); !errors.Is(err, ErrBadConfig) {
		t.Error("m=0 accepted")
	}
	if _, err := NewHedge(3, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("eps=0 accepted")
	}
	if _, err := NewHedge(3, 1.5); !errors.Is(err, ErrBadConfig) {
		t.Error("eps>1 accepted")
	}
}

func TestOptimalEps(t *testing.T) {
	t.Parallel()

	if _, err := OptimalEps(0, 10); !errors.Is(err, ErrBadConfig) {
		t.Error("m=0 accepted")
	}
	got, err := OptimalEps(10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(math.Log(10) / 1000); math.Abs(got-want) > 1e-12 {
		t.Errorf("OptimalEps = %v, want %v", got, want)
	}
	clamped, err := OptimalEps(1000, 1)
	if err != nil || clamped != 1 {
		t.Errorf("short-horizon eps = %v, want 1", clamped)
	}
}

func TestHedgeUniformStart(t *testing.T) {
	t.Parallel()

	h, err := NewHedge(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range h.Distribution() {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("initial distribution not uniform: %v", h.Distribution())
		}
	}
	if h.Options() != 4 || h.T() != 0 {
		t.Error("initial metadata wrong")
	}
}

func TestHedgeObserveValidation(t *testing.T) {
	t.Parallel()

	h, err := NewHedge(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Observe([]float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Error("short reward vector accepted")
	}
	if _, err := h.Observe([]float64{1, 2}); !errors.Is(err, ErrBadConfig) {
		t.Error("reward > 1 accepted")
	}
	if _, err := h.AverageRegretAgainst(0.5); !errors.Is(err, ErrBadConfig) {
		t.Error("regret with no steps accepted")
	}
}

func TestHedgeShiftsTowardWinner(t *testing.T) {
	t.Parallel()

	h, err := NewHedge(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := h.Observe([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain-0.5) > 1e-12 {
		t.Errorf("first-step gain %v, want 0.5 (uniform prior)", gain)
	}
	p := h.Distribution()
	// w = (1.5, 1) -> p = (0.6, 0.4).
	if math.Abs(p[0]-0.6) > 1e-12 || math.Abs(p[1]-0.4) > 1e-12 {
		t.Errorf("distribution after one win = %v, want (0.6, 0.4)", p)
	}
}

func TestHedgeNumericallyStableLongRun(t *testing.T) {
	t.Parallel()

	h, err := NewHedge(3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		if _, err := h.Observe([]float64{1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	p := h.Distribution()
	if !stats.IsProbabilityVector(p, 1e-9) {
		t.Fatalf("distribution degenerate after long run: %v", p)
	}
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[2]-0.5) > 1e-9 || p[1] > 1e-12 {
		t.Errorf("long-run distribution = %v, want (0.5, ~0, 0.5)", p)
	}
}

// TestHedgeRegretBound verifies the tuned Hedge meets its
// 2*sqrt(ln m/T) average-regret guarantee on stochastic rewards.
func TestHedgeRegretBound(t *testing.T) {
	t.Parallel()

	const m, horizon = 5, 2000
	qualities := []float64{0.9, 0.6, 0.5, 0.4, 0.3}
	environ, err := env.NewIIDBernoulli(qualities)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHedgeOptimal(m, horizon)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	rewards := make([]float64, m)
	bestRealized := 0.0
	for i := 0; i < horizon; i++ {
		if err := environ.Step(r, rewards); err != nil {
			t.Fatal(err)
		}
		bestRealized += rewards[0]
		if _, err := h.Observe(rewards); err != nil {
			t.Fatal(err)
		}
	}
	regret, err := h.AverageRegretAgainst(bestRealized / horizon)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * math.Sqrt(math.Log(m)/horizon)
	if regret > bound {
		t.Errorf("tuned Hedge regret %v exceeds bound %v", regret, bound)
	}
}

func TestReplicatorValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewReplicator(nil, 0.1); !errors.Is(err, ErrBadConfig) {
		t.Error("empty fitness accepted")
	}
	if _, err := NewReplicator([]float64{0.5}, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("dt=0 accepted")
	}
	if _, err := NewReplicator([]float64{1.5}, 0.1); !errors.Is(err, ErrBadConfig) {
		t.Error("fitness > 1 accepted")
	}
}

func TestReplicatorConvergesToBest(t *testing.T) {
	t.Parallel()

	r, err := NewReplicator([]float64{0.9, 0.5, 0.3}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	steps, reached, err := r.RunUntil(0.99, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatalf("replicator did not reach 0.99 after %d steps: %v", steps, r.State())
	}
	x := r.State()
	if !stats.IsProbabilityVector(x, 1e-9) {
		t.Errorf("state not a probability vector: %v", x)
	}
}

func TestReplicatorFixedPointAtVertex(t *testing.T) {
	t.Parallel()

	r, err := NewReplicator([]float64{0.9, 0.1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// A vertex (all mass on one option) is a fixed point even if it is
	// the inferior option — exactly why the finite dynamics needs mu>0.
	if err := r.SetState([]float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Step()
	}
	if x := r.State(); x[1] != 1 {
		t.Errorf("vertex was not a fixed point: %v", x)
	}
}

func TestReplicatorSetStateValidation(t *testing.T) {
	t.Parallel()

	r, err := NewReplicator([]float64{0.9, 0.1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetState([]float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Error("short state accepted")
	}
	if err := r.SetState([]float64{0.7, 0.7}); !errors.Is(err, ErrBadConfig) {
		t.Error("non-normalized state accepted")
	}
}

func TestReplicatorRunUntilValidation(t *testing.T) {
	t.Parallel()

	r, err := NewReplicator([]float64{0.9, 0.1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RunUntil(0, 10); !errors.Is(err, ErrBadConfig) {
		t.Error("target=0 accepted")
	}
	if _, _, err := r.RunUntil(0.5, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("maxSteps=0 accepted")
	}
}

func TestQuickHedgeDistributionValid(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, mRaw, epsRaw uint8, steps uint8) bool {
		m := int(mRaw%8) + 2
		eps := float64(epsRaw%100)/100 + 0.01
		h, err := NewHedge(m, eps)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		rewards := make([]float64, m)
		for i := 0; i < int(steps%60); i++ {
			for j := range rewards {
				if r.Bernoulli(0.5) {
					rewards[j] = 1
				} else {
					rewards[j] = 0
				}
			}
			if _, err := h.Observe(rewards); err != nil {
				return false
			}
		}
		return stats.IsProbabilityVector(h.Distribution(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplicatorSimplexInvariant(t *testing.T) {
	t.Parallel()

	f := func(f1, f2, f3 uint8, steps uint8) bool {
		fitness := []float64{float64(f1) / 255, float64(f2) / 255, float64(f3) / 255}
		r, err := NewReplicator(fitness, 0.1)
		if err != nil {
			return false
		}
		for i := 0; i < int(steps); i++ {
			r.Step()
		}
		return stats.IsProbabilityVector(r.State(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHedgeObserve(b *testing.B) {
	h, err := NewHedge(50, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	rewards := make([]float64, 50)
	for j := range rewards {
		if j%2 == 0 {
			rewards[j] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Observe(rewards); err != nil {
			b.Fatal(err)
		}
	}
}
