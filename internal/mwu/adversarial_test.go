package mwu

import (
	"math"
	"testing"
)

// TestHedgeAdversarialSequence contrasts the settings the paper
// distinguishes: Hedge's guarantee is adversarial, so it must hold even
// on a reward sequence crafted to punish any follow-the-crowd strategy
// (the winner alternates in long blocks). The social dynamics' theorem
// only covers stochastic rewards — this is why the paper's analysis is
// "not the standard adversarial MWU setting".
func TestHedgeAdversarialSequence(t *testing.T) {
	t.Parallel()

	const (
		m       = 2
		horizon = 4000
		block   = 50
	)
	h, err := NewHedgeOptimal(m, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var cum [m]float64
	for step := 0; step < horizon; step++ {
		winner := (step / block) % m
		rewards := make([]float64, m)
		rewards[winner] = 1
		cum[winner]++
		if _, err := h.Observe(rewards); err != nil {
			t.Fatal(err)
		}
	}
	best := math.Max(cum[0], cum[1]) / horizon
	regret, err := h.AverageRegretAgainst(best)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * math.Sqrt(math.Log(m)/horizon)
	if regret > bound {
		t.Errorf("adversarial regret %v exceeds tuned-Hedge bound %v", regret, bound)
	}
}

// TestHedgeWorstCaseSingleGoodArm: the classical lower-bound-style
// instance (one arm always pays, observed late) still satisfies the
// bound.
func TestHedgeWorstCaseSingleGoodArm(t *testing.T) {
	t.Parallel()

	const m, horizon = 8, 3000
	h, err := NewHedgeOptimal(m, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([]float64, m)
	for step := 0; step < horizon; step++ {
		for j := range rewards {
			rewards[j] = 0
		}
		// Arm m-1 is silently best, paying every step.
		rewards[m-1] = 1
		if _, err := h.Observe(rewards); err != nil {
			t.Fatal(err)
		}
	}
	regret, err := h.AverageRegretAgainst(1)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * math.Sqrt(math.Log(m)/horizon)
	if regret > bound {
		t.Errorf("single-good-arm regret %v exceeds bound %v", regret, bound)
	}
	// And the learner did converge onto the good arm.
	if p := h.Distribution(); p[m-1] < 0.9 {
		t.Errorf("final mass on the good arm %v, want > 0.9", p[m-1])
	}
}
