// Package mwu implements the classic multiplicative-weights-update
// baselines the paper relates its dynamics to (Arora–Hazan–Kale 2012):
//
//   - Hedge: the standard exponential-weights algorithm with a free
//     learning rate ε, including the horizon-optimal tuning
//     ε = sqrt(ln m / T) achieving O(sqrt(ln m / T)) average regret —
//     the rate the paper's conclusion contrasts against the socially
//     constrained β.
//   - Replicator: the deterministic replicator dynamics, the
//     continuous-time / infinite-population limit mentioned in
//     Section 3, integrated with explicit Euler steps on the expected
//     rewards.
//
// Unlike the paper's dynamics, Hedge explicitly stores a weight vector —
// precisely the memory the social-learning implementation avoids.
package mwu

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadConfig reports invalid MWU parameters.
var ErrBadConfig = errors.New("mwu: invalid config")

// Hedge is the exponential-weights algorithm over m options with
// learning rate eps: after observing reward vector r^t ∈ [0,1]^m the
// weights update as w_j ← w_j · (1+ε)^{r_j} (the gains form of AHK).
type Hedge struct {
	eps  float64
	logW []float64
	t    int

	cumReward float64
	lastP     []float64
}

// NewHedge creates a Hedge instance with m options and rate eps ∈ (0, 1].
func NewHedge(m int, eps float64) (*Hedge, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: m=%d", ErrBadConfig, m)
	}
	if math.IsNaN(eps) || eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("%w: eps=%v", ErrBadConfig, eps)
	}
	return &Hedge{
		eps:  eps,
		logW: make([]float64, m),
	}, nil
}

// OptimalEps returns the horizon-tuned rate min(1, sqrt(ln m / T)).
func OptimalEps(m, horizon int) (float64, error) {
	if m <= 0 || horizon <= 0 {
		return 0, fmt.Errorf("%w: optimal eps m=%d T=%d", ErrBadConfig, m, horizon)
	}
	if m == 1 {
		return 1, nil
	}
	eps := math.Sqrt(math.Log(float64(m)) / float64(horizon))
	if eps > 1 {
		eps = 1
	}
	if eps <= 0 {
		eps = 1e-9
	}
	return eps, nil
}

// NewHedgeOptimal creates a Hedge tuned for the given horizon.
func NewHedgeOptimal(m, horizon int) (*Hedge, error) {
	eps, err := OptimalEps(m, horizon)
	if err != nil {
		return nil, err
	}
	return NewHedge(m, eps)
}

// Options returns m.
func (h *Hedge) Options() int { return len(h.logW) }

// T returns the number of observed steps.
func (h *Hedge) T() int { return h.t }

// Distribution returns the current normalized weight vector, computed
// stably in log space.
func (h *Hedge) Distribution() []float64 {
	out := make([]float64, len(h.logW))
	maxLog := h.logW[0]
	for _, lw := range h.logW[1:] {
		if lw > maxLog {
			maxLog = lw
		}
	}
	sum := 0.0
	for j, lw := range h.logW {
		out[j] = math.Exp(lw - maxLog)
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// Observe feeds the full reward vector of one step (full-information
// setting, matching the group's view in the paper) and returns the
// expected reward earned by the pre-update distribution.
func (h *Hedge) Observe(rewards []float64) (float64, error) {
	if len(rewards) != len(h.logW) {
		return 0, fmt.Errorf("%w: rewards length %d, want %d", ErrBadConfig, len(rewards), len(h.logW))
	}
	p := h.Distribution()
	gain := 0.0
	for j, r := range rewards {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return 0, fmt.Errorf("%w: reward[%d]=%v", ErrBadConfig, j, r)
		}
		gain += p[j] * r
	}
	lg1e := math.Log1p(h.eps)
	for j, r := range rewards {
		h.logW[j] += r * lg1e
	}
	h.t++
	h.cumReward += gain
	h.lastP = p
	return gain, nil
}

// CumulativeReward returns Σ_t Σ_j p^{t−1}_j r^t_j.
func (h *Hedge) CumulativeReward() float64 { return h.cumReward }

// AverageRegretAgainst returns bestAvg − (cumulative reward)/T for a
// benchmark per-step reward bestAvg (e.g. η_1).
func (h *Hedge) AverageRegretAgainst(bestAvg float64) (float64, error) {
	if h.t == 0 {
		return 0, fmt.Errorf("%w: no steps observed", ErrBadConfig)
	}
	return bestAvg - h.cumReward/float64(h.t), nil
}

// Replicator integrates the deterministic replicator dynamics
//
//	dx_j/dt = x_j·(f_j − Σ_k x_k f_k)
//
// on fixed expected fitness f (here the option qualities η), using Euler
// steps of size dt. It is the noiseless, infinite-population,
// continuous-time limit discussed in Section 3.
type Replicator struct {
	fitness []float64
	x       []float64
	dt      float64
}

// NewReplicator validates and builds the integrator, starting uniform.
func NewReplicator(fitness []float64, dt float64) (*Replicator, error) {
	if len(fitness) == 0 {
		return nil, fmt.Errorf("%w: empty fitness", ErrBadConfig)
	}
	if math.IsNaN(dt) || dt <= 0 || dt > 1 {
		return nil, fmt.Errorf("%w: dt=%v", ErrBadConfig, dt)
	}
	for j, f := range fitness {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return nil, fmt.Errorf("%w: fitness[%d]=%v", ErrBadConfig, j, f)
		}
	}
	fit := make([]float64, len(fitness))
	copy(fit, fitness)
	x := make([]float64, len(fitness))
	for j := range x {
		x[j] = 1 / float64(len(x))
	}
	return &Replicator{fitness: fit, x: x, dt: dt}, nil
}

// State returns a copy of the current population share vector.
func (r *Replicator) State() []float64 {
	out := make([]float64, len(r.x))
	copy(out, r.x)
	return out
}

// SetState replaces the state with a probability vector.
func (r *Replicator) SetState(x []float64) error {
	if len(x) != len(r.x) {
		return fmt.Errorf("%w: state length %d, want %d", ErrBadConfig, len(x), len(r.x))
	}
	sum := 0.0
	for j, v := range x {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("%w: state[%d]=%v", ErrBadConfig, j, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: state sums to %v", ErrBadConfig, sum)
	}
	copy(r.x, x)
	return nil
}

// Step advances one Euler step and renormalizes to defeat round-off.
func (r *Replicator) Step() {
	avg := 0.0
	for j, f := range r.fitness {
		avg += r.x[j] * f
	}
	sum := 0.0
	for j, f := range r.fitness {
		r.x[j] += r.dt * r.x[j] * (f - avg)
		if r.x[j] < 0 {
			r.x[j] = 0
		}
		sum += r.x[j]
	}
	if sum > 0 {
		for j := range r.x {
			r.x[j] /= sum
		}
	}
}

// RunUntil integrates until the best option's share exceeds target or
// maxSteps elapse, returning the number of steps taken and whether the
// target was reached. The best option is the argmax of fitness.
func (r *Replicator) RunUntil(target float64, maxSteps int) (steps int, reached bool, err error) {
	if math.IsNaN(target) || target <= 0 || target >= 1 || maxSteps <= 0 {
		return 0, false, fmt.Errorf("%w: target=%v maxSteps=%d", ErrBadConfig, target, maxSteps)
	}
	best := 0
	for j, f := range r.fitness {
		if f > r.fitness[best] {
			best = j
		}
	}
	for steps = 0; steps < maxSteps; steps++ {
		if r.x[best] >= target {
			return steps, true, nil
		}
		r.Step()
	}
	return steps, r.x[best] >= target, nil
}
