package repro_test

// Golden-fixture pins for the simulation hot path: the RNG draw order of
// every engine is a compatibility surface (cache keys, sweep bit-identity,
// and cross-restart durability all assume a spec replays to the same
// Report), so the exact float bits of seeded runs are pinned here — one
// fixture set per draw-order contract version.
//
// goldenWantsV1 was captured from the pre-sampler-refactor engines and is
// frozen: any change to those values means a pre-versioning spec no longer
// replays to the same report and every persisted cache entry is silently
// stale. goldenWantsV2 pins the draw_order v2 replication-block contract
// (5 lanes: the quad kernel plus a single-lane tail, merged in replication
// order with the serving arithmetic). Regenerate (run with GOLDEN_PRINT=1
// and paste the output) only when a draw-order change is deliberate enough
// to mint a NEW version — existing versions' tables never change.

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

type goldenCase struct {
	name  string
	steps int
	build func(t testing.TB) core.Config
}

type goldenWant struct {
	avgBits    uint64
	regretBits uint64
	popBits    []uint64
}

func goldenCases() []goldenCase {
	mustGraph := func(g *graph.Graph, err error) func(testing.TB) *graph.Graph {
		return func(t testing.TB) *graph.Graph {
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
	}
	ring := mustGraph(graph.Ring(60))
	er := mustGraph(graph.ErdosRenyi(50, 0.15, rng.New(123)))
	star := mustGraph(graph.Star(41))
	return []goldenCase{
		{"aggregate/m=3", 500, func(testing.TB) core.Config {
			return core.Config{N: 10_000, Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7, Seed: 1}
		}},
		{"aggregate/m=4/N=1e6", 300, func(testing.TB) core.Config {
			return core.Config{N: 1_000_000, Qualities: []float64{0.6, 0.55, 0.5, 0.45}, Beta: 0.6, Seed: 42}
		}},
		{"aggregate/m=8/smallN", 400, func(testing.TB) core.Config {
			return core.Config{
				N: 137, Qualities: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2},
				Beta: 0.55, Alpha: 0.3, Mu: 0.1, Seed: 7,
			}
		}},
		{"agent/m=3", 400, func(testing.TB) core.Config {
			return core.Config{N: 500, Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7, Engine: core.EngineAgent, Seed: 3}
		}},
		{"agent/m=5", 300, func(testing.TB) core.Config {
			return core.Config{
				N: 1000, Qualities: []float64{0.8, 0.7, 0.6, 0.5, 0.4}, Beta: 0.65,
				Engine: core.EngineAgent, Seed: 11,
			}
		}},
		{"agent/m=2/asym", 500, func(testing.TB) core.Config {
			return core.Config{
				N: 256, Qualities: []float64{0.7, 0.3}, Beta: 0.9, Alpha: 0.2, Mu: 0.05,
				Engine: core.EngineAgent, Seed: 99,
			}
		}},
		{"infinite/m=3", 1000, func(testing.TB) core.Config {
			return core.Config{Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7, Seed: 5}
		}},
		{"infinite/m=6", 800, func(testing.TB) core.Config {
			return core.Config{Qualities: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4}, Beta: 0.6, Seed: 13}
		}},
		{"infinite/m=2/mu=0.2", 600, func(testing.TB) core.Config {
			return core.Config{Qualities: []float64{0.55, 0.45}, Beta: 0.75, Mu: 0.2, Seed: 21}
		}},
		{"network/ring", 300, func(t testing.TB) core.Config {
			return core.Config{Network: ring(t), Qualities: []float64{0.9, 0.5, 0.5}, Beta: 0.7, Seed: 17}
		}},
		{"network/erdos-renyi", 300, func(t testing.TB) core.Config {
			return core.Config{Network: er(t), Qualities: []float64{0.8, 0.6}, Beta: 0.65, Mu: 0.1, Seed: 23}
		}},
		{"network/star/m=4", 200, func(t testing.TB) core.Config {
			return core.Config{Network: star(t), Qualities: []float64{0.85, 0.6, 0.55, 0.5}, Beta: 0.7, Seed: 29}
		}},
	}
}

func runGolden(t testing.TB, gc goldenCase) core.Report {
	t.Helper()
	g, err := core.New(gc.build(t))
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	report, err := g.Run(gc.steps)
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	return report
}

// goldenV2Lanes is the block width the v2 fixtures run at: 5 lanes
// exercises the 4-lane quad kernel AND the single-lane fused tail in one
// fixture, and the replication-order merge below makes the values
// independent of the width anyway (the chunk-invariance contract).
const goldenV2Lanes = 5

// runGoldenV2 runs the case as one draw_order v2 replication block and
// merges the lanes with the serving layer's replication-order arithmetic,
// so these fixtures pin both the per-lane draws and the merge.
func runGoldenV2(t testing.TB, gc goldenCase) core.Report {
	t.Helper()
	b, err := core.NewBlock(gc.build(t), 0, goldenV2Lanes)
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	for s := 0; s < gc.steps; s++ {
		if err := b.StepBlock(); err != nil {
			t.Fatalf("%s: step %d: %v", gc.name, s, err)
		}
	}
	var regrets stats.Summary
	var rewardMean float64
	bestQ := b.BestQuality()
	popSum := make([]float64, b.Options())
	for k := 0; k < goldenV2Lanes; k++ {
		avg := b.CumulativeGroupReward(k) / float64(gc.steps)
		regrets.Add(bestQ - avg)
		rewardMean += (avg - rewardMean) / float64(k+1)
		for j, p := range b.AppendPopularity(k, nil) {
			popSum[j] += p
		}
	}
	for j := range popSum {
		popSum[j] /= goldenV2Lanes
	}
	return core.Report{
		Steps:              gc.steps,
		AverageGroupReward: rewardMean,
		Regret:             regrets.Mean(),
		Popularity:         popSum,
	}
}

// goldenVersions maps each contract version onto its runner and fixture
// set. Adding a draw_order v3 means adding a row here and regenerating
// ONLY the new table.
var goldenVersions = []struct {
	version string
	run     func(testing.TB, goldenCase) core.Report
	wants   map[string]goldenWant
}{
	{"v1", runGolden, goldenWantsV1},
	{"v2", runGoldenV2, goldenWantsV2},
}

// TestGoldenReports pins the exact output bits of seeded runs across all
// four engines (aggregate, agent, infinite, network), for every
// draw-order contract version.
func TestGoldenReports(t *testing.T) {
	for _, gv := range goldenVersions {
		gv := gv
		for _, gc := range goldenCases() {
			gc := gc
			t.Run(gv.version+"/"+gc.name, func(t *testing.T) {
				t.Parallel()
				want, ok := gv.wants[gc.name]
				if !ok {
					t.Fatalf("no %s golden recorded for %q (run with GOLDEN_PRINT=1 to generate)", gv.version, gc.name)
				}
				report := gv.run(t, gc)
				if got := math.Float64bits(report.AverageGroupReward); got != want.avgBits {
					t.Errorf("AverageGroupReward bits = %#x (%v), want %#x (%v)",
						got, report.AverageGroupReward, want.avgBits, math.Float64frombits(want.avgBits))
				}
				if got := math.Float64bits(report.Regret); got != want.regretBits {
					t.Errorf("Regret bits = %#x (%v), want %#x (%v)",
						got, report.Regret, want.regretBits, math.Float64frombits(want.regretBits))
				}
				if len(report.Popularity) != len(want.popBits) {
					t.Fatalf("popularity length %d, want %d", len(report.Popularity), len(want.popBits))
				}
				for j, p := range report.Popularity {
					if got := math.Float64bits(p); got != want.popBits[j] {
						t.Errorf("Popularity[%d] bits = %#x (%v), want %#x (%v)",
							j, got, p, want.popBits[j], math.Float64frombits(want.popBits[j]))
					}
				}
			})
		}
	}
}

// TestGoldenPrint regenerates the per-version fixture-table source. It
// only runs when GOLDEN_PRINT=1. Pasting a regenerated table over an
// EXISTING version's fixtures is never legitimate — that version's draws
// are frozen; a deliberate draw-order change mints a new version with its
// own table.
func TestGoldenPrint(t *testing.T) {
	if os.Getenv("GOLDEN_PRINT") == "" {
		t.Skip("set GOLDEN_PRINT=1 to regenerate the golden tables")
	}
	for _, gv := range goldenVersions {
		fmt.Printf("var goldenWants%s = map[string]goldenWant{\n", strings.ToUpper(gv.version[:1])+gv.version[1:])
		for _, gc := range goldenCases() {
			report := gv.run(t, gc)
			fmt.Printf("\t%q: {\n", gc.name)
			fmt.Printf("\t\tavgBits:    %#x,\n", math.Float64bits(report.AverageGroupReward))
			fmt.Printf("\t\tregretBits: %#x,\n", math.Float64bits(report.Regret))
			fmt.Printf("\t\tpopBits:    []uint64{")
			for j, p := range report.Popularity {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%#x", math.Float64bits(p))
			}
			fmt.Println("},")
			fmt.Println("\t},")
		}
		fmt.Println("}")
		fmt.Println()
	}
}

var goldenWantsV1 = map[string]goldenWant{
	"aggregate/m=3": {
		avgBits:    0x3fe8ee38388e3019,
		regretBits: 0x3fbef4a4a1f4e5a0,
		popBits:    []uint64{0x3febf4b9efb97ff1, 0x3fb0ac1f47cf6979, 0x3faf5c2274c92e02},
	},
	"aggregate/m=4/N=1e6": {
		avgBits:    0x3fe26eb311764b1d,
		regretBits: 0x3f989004379d02c0,
		popBits:    []uint64{0x3fe11b28c798efb0, 0x3fc6dfa186d3c827, 0x3fa920bb0bccdbf3, 0x3fce6b8c97d5421d},
	},
	"aggregate/m=8/smallN": {
		avgBits:    0x3fe8340c60e2d10f,
		regretBits: 0x3fc26301afa7eef8,
		popBits:    []uint64{0x3fdb6db6db6db6db, 0x3fc7c57c57c57c58, 0x3f9d41d41d41d41d, 0x3f9d41d41d41d41d, 0x3fcb6db6db6db6db, 0x3fad41d41d41d41d, 0x3fad41d41d41d41d, 0x0},
	},
	"agent/m=3": {
		avgBits:    0x3fe888b617b5970c,
		regretBits: 0x3fc1105ad45cd704,
		popBits:    []uint64{0x3fe920fb49d0e229, 0x3faf693a1c451ab3, 0x3fc3a1c451ab30b0},
	},
	"agent/m=5": {
		avgBits:    0x3fe5b88e5eb02f37,
		regretBits: 0x3fbf0859d74b5318,
		popBits:    []uint64{0x3fe56bc305c8477e, 0x3fc65742c27f3625, 0x3fa2ec8ce0fc5201, 0x3fb3731f03adfef3, 0x3fa613f9b1265fac},
	},
	"agent/m=2/asym": {
		avgBits:    0x3fe41f4c908e1fda,
		regretBits: 0x3fb238ceaec23460,
		popBits:    []uint64{0x3ff0000000000000, 0x0},
	},
	"infinite/m=3": {
		avgBits:    0x3fe9ffc81351467f,
		regretBits: 0x3fb66825cbdc3270,
		popBits:    []uint64{0x3feb211f6e5901be, 0x3fb50e74b1cad362, 0x3fb1e88fdb6d1ea8},
	},
	"infinite/m=6": {
		avgBits:    0x3fea3acf1eb91e93,
		regretBits: 0x3fb48fed709d71d0,
		popBits:    []uint64{0x3fe49389c95a4610, 0x3fc9d1998aade25f, 0x3fb3805ea7301e62, 0x3f9ee3e431420c06, 0x3f985884d9d5da44, 0x3f99c416d76fcb45},
	},
	"infinite/m=2/mu=0.2": {
		avgBits:    0x3fe06ceab79e6ab7,
		regretBits: 0x3fa2caee1fb2ee30,
		popBits:    []uint64{0x3fead4d45ae24642, 0x3fc4acae9476e6fc},
	},
	"network/ring": {
		avgBits:    0x3fe84a2ee05ea9c9,
		regretBits: 0x3fc20a77b1b88c10,
		popBits:    []uint64{0x3fe2222222222223, 0x3fc1111111111111, 0x3fd3333333333333},
	},
	"network/erdos-renyi": {
		avgBits:    0x3fe791228afdadd3,
		regretBits: 0x3fb043b874df5e38,
		popBits:    []uint64{0x3fe3d70a3d70a3d9, 0x3fd851eb851eb853},
	},
	"network/star/m=4": {
		avgBits:    0x3fe7aa157aa157aa,
		regretBits: 0x3fbc48edc48edc48,
		popBits:    []uint64{0x3fb2bb512bb512bc, 0x0, 0x3feda895da895dad, 0x0},
	},
}

var goldenWantsV2 = map[string]goldenWant{
	"aggregate/m=3": {
		avgBits:    0x3fea006734bc4053,
		regretBits: 0x3fb6632cc08463ce,
		popBits:    []uint64{0x3feaa35f78357e4d, 0x3fb5e0878fa3ff4d, 0x3fb5047caeb00e48},
	},
	"aggregate/m=4/N=1e6": {
		avgBits:    0x3fe1a1291aa3a9fc,
		regretBits: 0x3fa920a188f89376,
		popBits:    []uint64{0x3fd7a007ec8867ff, 0x3fc92c664b1fa993, 0x3fcd12389f3c4d96, 0x3fca81513c9338d8},
	},
	"aggregate/m=8/smallN": {
		avgBits:    0x3fe78a96a6d628c6,
		regretBits: 0x3fc508d897da901a,
		popBits:    []uint64{0x3fd560da517f8c02, 0x3fd36db0db6914e6, 0x3f98311dfe523528, 0x3fb3a53f1472d353, 0x3fbd1d01f857719b, 0x3fa5ca02ae015ca0, 0x3fb28bbc767f7a9c, 0x3fa10d19e4fd027b},
	},
	"agent/m=3": {
		avgBits:    0x3fe9ea7887f5c5b9,
		regretBits: 0x3fb712a226b838a3,
		popBits:    []uint64{0x3fe600b5d5782300, 0x3fc4da2393ae63ab, 0x3fc3230516711055},
	},
	"agent/m=5": {
		avgBits:    0x3fe64c0d76f54366,
		regretBits: 0x3fba6c611522b1a2,
		popBits:    []uint64{0x3fe14f48375fbc83, 0x3fc576ab12e0df3e, 0x3fc3950e7589480a, 0x3fb81f5b84870d5a, 0x3fa69ddf5f4d7ffd},
	},
	"agent/m=2/asym": {
		avgBits:    0x3fe52bb4641b9b42,
		regretBits: 0x3fa3ab2024acb233,
		popBits:    []uint64{0x3fee426ec81576b3, 0x3fabd9137ea894c8},
	},
	"infinite/m=3": {
		avgBits:    0x3fe982f65144de3b,
		regretBits: 0x3fba4eb3dc3f7493,
		popBits:    []uint64{0x3fe88c1327693635, 0x3fc38a4fc1396c38, 0x3fb48ac7424375ee},
	},
	"infinite/m=6": {
		avgBits:    0x3feac0355ebf14b0,
		regretBits: 0x3fb064bb706dc0e6,
		popBits:    []uint64{0x3fe7f89bef1dbfe0, 0x3fbee5b362800a6e, 0x3fa81603e65b0e82, 0x3fa141d300cf5f85, 0x3f9f0e3f66e3a053, 0x3f9397c75d0f5dfa},
	},
	"infinite/m=2/mu=0.2": {
		avgBits:    0x3fdf685233de44b5,
		regretBits: 0x3fae5707faa773fb,
		popBits:    []uint64{0x3fe04e714cd08e55, 0x3fdf631d665ee356},
	},
	"network/ring": {
		avgBits:    0x3fe7bb189f1b5a28,
		regretBits: 0x3fc446d0b6c5ca94,
		popBits:    []uint64{0x3fe64b17e4b17e50, 0x3fc40da740da740d, 0x3fc2c5f92c5f92c6},
	},
	"network/erdos-renyi": {
		avgBits:    0x3fe765c59e4bf797,
		regretBits: 0x3fb19e9fda6d1018,
		popBits:    []uint64{0x3fe624dd2f1a9fc1, 0x3fd3b645a1cac083},
	},
	"network/star/m=4": {
		avgBits:    0x3fe4f1c38f1c38f1,
		regretBits: 0x3fc905be905be906,
		popBits:    []uint64{0x3f98f9c18f9c18fa, 0x3fadf881df881df8, 0x3fe5da895da895de, 0x3fcdf881df881dfd},
	},
}
